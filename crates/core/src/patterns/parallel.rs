//! Figure 1(a) and 1(b): the two parallel patterns.

use std::borrow::Borrow;

use redundancy_obs::SpanKind;

use crate::adjudicator::acceptance::{AcceptanceTest, BoxedAcceptance};
use crate::adjudicator::incremental::{Decision, IncrementalAdjudicator};
use crate::adjudicator::Adjudicator;
use crate::context::ExecContext;
use crate::outcome::{RejectionReason, VariantOutcome, Verdict};
use crate::patterns::engine::{self, StreamJudge};
use crate::patterns::{emit_verdict, verdict_status, DecisionPolicy, ExecutionMode, PatternReport};
use crate::variant::{run_contained, BoxedVariant};

/// A selection component: a variant paired with its own acceptance test.
type Component<I, O> = (BoxedVariant<I, O>, BoxedAcceptance<I, O>);

/// Runs each variant against `input` with a forked context, either in the
/// calling thread or on scoped threads, and returns the outcomes in
/// variant order.
///
/// Generic over [`Borrow`] so callers can pass owned variants
/// (`&[BoxedVariant]`) or, when the variant list is split-borrowed out of
/// a larger structure, references (`&[&BoxedVariant]`).
fn execute_all<I, O, V>(
    variants: &[V],
    input: &I,
    ctx: &ExecContext,
    mode: ExecutionMode,
) -> Vec<VariantOutcome<O>>
where
    I: Sync,
    O: Send,
    V: Borrow<BoxedVariant<I, O>> + Sync,
{
    match mode {
        ExecutionMode::Sequential => {
            let mut outcomes = Vec::with_capacity(variants.len());
            for (i, variant) in variants.iter().enumerate() {
                let mut child = ctx.fork(i as u64);
                outcomes.push(run_contained(variant.borrow().as_ref(), input, &mut child));
            }
            outcomes
        }
        ExecutionMode::Threaded => {
            let mut slots: Vec<Option<VariantOutcome<O>>> =
                (0..variants.len()).map(|_| None).collect();
            // Variant threads are crash-contained (run_contained catches
            // panics), so the scope never propagates a panic.
            std::thread::scope(|scope| {
                for (i, (variant, slot)) in variants.iter().zip(slots.iter_mut()).enumerate() {
                    let mut child = ctx.fork(i as u64);
                    scope.spawn(move || {
                        *slot = Some(run_contained(variant.borrow().as_ref(), input, &mut child));
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.expect("every scoped thread fills its slot"))
                .collect()
        }
    }
}

/// Streaming judge of Figure 1(a): delegates to the adjudicator's
/// incremental interface, falling back to batch adjudication when the
/// stream ends undecided.
struct EvaluationJudge<'a, O> {
    incremental: Box<dyn IncrementalAdjudicator<O> + 'a>,
    adjudicator: &'a dyn Adjudicator<O>,
}

impl<O> StreamJudge<O> for EvaluationJudge<'_, O> {
    fn feed(&mut self, _idx: usize, outcome: &VariantOutcome<O>) -> Decision<O> {
        self.incremental.feed(outcome)
    }

    fn conclude(&mut self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        self.adjudicator.adjudicate_batch_row(outcomes)
    }
}

/// Streaming judge of Figure 1(b): validates each outcome with its
/// component's own acceptance test; the first validated result decides.
struct SelectionJudge<'a, I, O> {
    components: &'a [Component<I, O>],
    input: &'a I,
    selected: Option<usize>,
}

impl<I, O: Clone> StreamJudge<O> for SelectionJudge<'_, I, O> {
    fn feed(&mut self, idx: usize, outcome: &VariantOutcome<O>) -> Decision<O> {
        if let Some(output) = outcome.output() {
            if self.components[idx].1.accept(self.input, output) {
                self.selected = Some(idx);
                // The first validated component (in priority order) wins;
                // support counts it alone, dissent the components fed
                // before it.
                return Decision::Decided(Verdict::accepted(output.clone(), 1, idx));
            }
        }
        Decision::Undecided
    }

    fn conclude(&mut self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        // Only reached when no fed component validated.
        if outcomes.iter().all(|o| !o.is_ok()) {
            Verdict::rejected(RejectionReason::AllFailed)
        } else {
            Verdict::rejected(RejectionReason::AcceptanceFailed)
        }
    }
}

/// Figure 1(a): *parallel evaluation* — execute every alternative with the
/// same input configuration and let a single adjudicator merge the results.
///
/// This is the skeleton of N-version programming (with a majority voter),
/// of process replicas and N-variant systems (with a unanimity voter), and
/// of N-copy data diversity (with re-expressed inputs upstream).
///
/// # Examples
///
/// ```
/// use redundancy_core::adjudicator::voting::MajorityVoter;
/// use redundancy_core::context::ExecContext;
/// use redundancy_core::patterns::ParallelEvaluation;
/// use redundancy_core::variant::pure_variant;
///
/// let nvp = ParallelEvaluation::new(MajorityVoter::new())
///     .with_variant(pure_variant("v1", 10, |x: &i32| x + 1))
///     .with_variant(pure_variant("v2", 12, |x: &i32| x + 1))
///     .with_variant(pure_variant("v3-buggy", 8, |x: &i32| x + 2));
///
/// let mut ctx = ExecContext::new(7);
/// let report = nvp.run(&41, &mut ctx);
/// assert_eq!(report.into_output(), Some(42));
/// ```
pub struct ParallelEvaluation<I, O> {
    variants: Vec<BoxedVariant<I, O>>,
    adjudicator: Box<dyn Adjudicator<O>>,
    mode: ExecutionMode,
    policy: DecisionPolicy,
}

impl<I, O> ParallelEvaluation<I, O> {
    /// Creates the pattern with the given adjudicator and no variants.
    #[must_use]
    pub fn new(adjudicator: impl Adjudicator<O> + 'static) -> Self {
        Self {
            variants: Vec::new(),
            adjudicator: Box::new(adjudicator),
            mode: ExecutionMode::Sequential,
            policy: DecisionPolicy::default(),
        }
    }

    /// Adds an alternative (builder style).
    #[must_use]
    pub fn with_variant(mut self, variant: BoxedVariant<I, O>) -> Self {
        self.variants.push(variant);
        self
    }

    /// Adds an alternative.
    pub fn push_variant(&mut self, variant: BoxedVariant<I, O>) {
        self.variants.push(variant);
    }

    /// Selects the execution mode (builder style).
    #[must_use]
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the decision policy (builder style). The default,
    /// [`DecisionPolicy::Exhaustive`], reproduces the historical engine
    /// bit for bit; [`DecisionPolicy::Eager`] streams outcomes through
    /// the adjudicator's incremental interface and stops early once the
    /// verdict is fixed.
    #[must_use]
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The decision policy in effect.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.policy
    }

    /// Number of alternatives.
    #[must_use]
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether the pattern has no alternatives.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Executes every alternative and adjudicates.
    ///
    /// Virtual time is accounted as the critical path over alternatives in
    /// both execution modes.
    pub fn run(&self, input: &I, ctx: &mut ExecContext) -> PatternReport<O>
    where
        I: Sync,
        O: Send,
    {
        let span = ctx.obs_begin(|| SpanKind::Pattern {
            name: "parallel_evaluation",
        });
        let before = ctx.cost();
        let (outcomes, verdict) = match self.policy {
            DecisionPolicy::Exhaustive => {
                let outcomes = execute_all(&self.variants, input, ctx, self.mode);
                ctx.add_parallel_costs(outcomes.iter().map(|o| o.cost));
                // Exact-equality voters route through the branchless row
                // kernel; everything else keeps its scalar path.
                let verdict = self.adjudicator.adjudicate_batch_row(&outcomes);
                (outcomes, verdict)
            }
            DecisionPolicy::Eager => {
                let mut judge = EvaluationJudge {
                    incremental: self.adjudicator.begin_incremental(self.variants.len()),
                    adjudicator: self.adjudicator.as_ref(),
                };
                let run = engine::run_eager(&self.variants, input, ctx, self.mode, &mut judge);
                (run.outcomes, run.verdict)
            }
        };
        emit_verdict(ctx, &verdict);
        ctx.obs_end(
            span,
            verdict_status(&verdict),
            ctx.cost().delta_since(before).snapshot(),
        );
        PatternReport {
            verdict,
            cost: ctx.cost().delta_since(before),
            outcomes,
            // Figure 1(a) merges results through the adjudicator; no single
            // component is "selected".
            selected: None,
        }
        .recorded()
    }
}

/// Figure 1(b): *parallel selection* — every alternative executes in
/// parallel and is validated by its own adjudicator; the first (highest
/// priority) validated result is selected, the rest serve as hot spares.
///
/// This is self-checking programming: "acting" components ahead in the
/// list, "hot spares" behind them.
pub struct ParallelSelection<I, O> {
    components: Vec<Component<I, O>>,
    mode: ExecutionMode,
    policy: DecisionPolicy,
}

impl<I, O> ParallelSelection<I, O> {
    /// Creates an empty pattern.
    #[must_use]
    pub fn new() -> Self {
        Self {
            components: Vec::new(),
            mode: ExecutionMode::Sequential,
            policy: DecisionPolicy::default(),
        }
    }

    /// Adds a self-checking component: a variant paired with the acceptance
    /// test that validates it. Insertion order is priority order — the
    /// first component is the "acting" one.
    #[must_use]
    pub fn with_component(
        mut self,
        variant: BoxedVariant<I, O>,
        test: BoxedAcceptance<I, O>,
    ) -> Self {
        self.components.push((variant, test));
        self
    }

    /// Adds a self-checking component.
    pub fn push_component(&mut self, variant: BoxedVariant<I, O>, test: BoxedAcceptance<I, O>) {
        self.components.push((variant, test));
    }

    /// Selects the execution mode (builder style).
    #[must_use]
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the decision policy (builder style). Under
    /// [`DecisionPolicy::Eager`] the first validated (highest-priority)
    /// result decides immediately: lower-priority components are skipped
    /// in sequential mode and cooperatively cancelled in threaded mode.
    #[must_use]
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The decision policy in effect.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.policy
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the pattern has no components.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Executes all components, validates each result with its own test,
    /// and selects the first validated result.
    pub fn run(&self, input: &I, ctx: &mut ExecContext) -> PatternReport<O>
    where
        I: Sync,
        O: Send + Clone,
    {
        let span = ctx.obs_begin(|| SpanKind::Pattern {
            name: "parallel_selection",
        });
        let before = ctx.cost();
        if self.components.is_empty() {
            let verdict = Verdict::rejected(RejectionReason::NoOutcomes);
            emit_verdict(ctx, &verdict);
            ctx.obs_end(
                span,
                verdict_status(&verdict),
                ctx.cost().delta_since(before).snapshot(),
            );
            return PatternReport {
                verdict,
                outcomes: Vec::new(),
                cost: ctx.cost().delta_since(before),
                selected: None,
            }
            .recorded();
        }
        // Split borrows: variants for execution, tests for validation.
        let variants: Vec<&BoxedVariant<I, O>> = self.components.iter().map(|(v, _)| v).collect();
        let (outcomes, verdict, selected) = match self.policy {
            DecisionPolicy::Exhaustive => {
                let outcomes = execute_all(&variants, input, ctx, self.mode);
                ctx.add_parallel_costs(outcomes.iter().map(|o| o.cost));

                let mut selected = None;
                let mut validated = 0usize;
                for (idx, outcome) in outcomes.iter().enumerate() {
                    if let Some(output) = outcome.output() {
                        if self.components[idx].1.accept(input, output) {
                            validated += 1;
                            if selected.is_none() {
                                selected = Some(idx);
                            }
                        }
                    }
                }
                let verdict = match selected {
                    Some(idx) => Verdict::accepted(
                        outcomes[idx]
                            .output()
                            .expect("selected outcome is validated")
                            .clone(),
                        validated,
                        outcomes.len() - validated,
                    ),
                    None => {
                        if outcomes.iter().all(|o| !o.is_ok()) {
                            Verdict::rejected(RejectionReason::AllFailed)
                        } else {
                            Verdict::rejected(RejectionReason::AcceptanceFailed)
                        }
                    }
                };
                (outcomes, verdict, selected)
            }
            DecisionPolicy::Eager => {
                let mut judge = SelectionJudge {
                    components: &self.components,
                    input,
                    selected: None,
                };
                let run = engine::run_eager(&variants, input, ctx, self.mode, &mut judge);
                (run.outcomes, run.verdict, judge.selected)
            }
        };
        emit_verdict(ctx, &verdict);
        ctx.obs_end(
            span,
            verdict_status(&verdict),
            ctx.cost().delta_since(before).snapshot(),
        );
        PatternReport {
            verdict,
            cost: ctx.cost().delta_since(before),
            selected: selected.map(|idx| outcomes[idx].variant.clone()),
            outcomes,
        }
        .recorded()
    }
}

impl<I, O> Default for ParallelSelection<I, O> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjudicator::acceptance::FnAcceptance;
    use crate::adjudicator::voting::MajorityVoter;
    use crate::outcome::VariantFailure;
    use crate::variant::{pure_variant, FnVariant};

    fn failing_variant(name: &str) -> BoxedVariant<i32, i32> {
        Box::new(FnVariant::new(name, |_: &i32, _: &mut ExecContext| {
            Err(VariantFailure::crash("injected"))
        }))
    }

    #[test]
    fn parallel_evaluation_masks_minority_fault() {
        let p = ParallelEvaluation::new(MajorityVoter::new())
            .with_variant(pure_variant("good1", 10, |x: &i32| x * 2))
            .with_variant(pure_variant("good2", 20, |x: &i32| x * 2))
            .with_variant(pure_variant("bad", 5, |x: &i32| x * 3));
        let mut ctx = ExecContext::new(1);
        let report = p.run(&10, &mut ctx);
        assert_eq!(report.output(), Some(&20));
        assert_eq!(report.executed(), 3);
        // Critical path: max(10, 20, 5) = 20 virtual ns.
        assert_eq!(report.cost.virtual_ns, 20);
        assert_eq!(report.cost.work_units, 35);
        assert_eq!(report.cost.invocations, 3);
    }

    #[test]
    fn parallel_evaluation_threaded_matches_sequential() {
        let build = |mode| {
            ParallelEvaluation::new(MajorityVoter::new())
                .with_mode(mode)
                .with_variant(pure_variant("a", 10, |x: &i32| x + 1))
                .with_variant(pure_variant("b", 30, |x: &i32| x + 1))
                .with_variant(pure_variant("c", 20, |x: &i32| x + 2))
        };
        let mut ctx1 = ExecContext::new(11);
        let seq = build(ExecutionMode::Sequential).run(&1, &mut ctx1);
        let mut ctx2 = ExecContext::new(11);
        let thr = build(ExecutionMode::Threaded).run(&1, &mut ctx2);
        assert_eq!(seq.verdict, thr.verdict);
        assert_eq!(seq.cost.virtual_ns, thr.cost.virtual_ns);
        assert_eq!(seq.outcomes.len(), thr.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(thr.outcomes.iter()) {
            assert_eq!(a.result, b.result);
        }
    }

    #[test]
    fn parallel_evaluation_contains_crashes() {
        let p = ParallelEvaluation::new(MajorityVoter::new())
            .with_variant(pure_variant("good1", 10, |x: &i32| x * 2))
            .with_variant(pure_variant("good2", 10, |x: &i32| x * 2))
            .with_variant(failing_variant("crasher"));
        let mut ctx = ExecContext::new(1);
        let report = p.run(&10, &mut ctx);
        assert_eq!(report.output(), Some(&20));
        assert_eq!(
            report.outcomes[2].result,
            Err(VariantFailure::crash("injected"))
        );
    }

    #[test]
    fn parallel_evaluation_rejects_without_majority() {
        let p = ParallelEvaluation::new(MajorityVoter::new())
            .with_variant(pure_variant("a", 1, |x: &i32| x + 1))
            .with_variant(pure_variant("b", 1, |x: &i32| x + 2))
            .with_variant(pure_variant("c", 1, |x: &i32| x + 3));
        let mut ctx = ExecContext::new(1);
        let report = p.run(&0, &mut ctx);
        assert!(!report.is_accepted());
        assert!(report.selected.is_none());
    }

    #[test]
    fn parallel_selection_prefers_acting_component() {
        let good = FnAcceptance::new("positive", |_: &i32, out: &i32| *out > 0);
        let good2 = FnAcceptance::new("positive", |_: &i32, out: &i32| *out > 0);
        let p = ParallelSelection::new()
            .with_component(pure_variant("acting", 10, |x: &i32| x + 1), Box::new(good))
            .with_component(pure_variant("spare", 10, |x: &i32| x + 2), Box::new(good2));
        let mut ctx = ExecContext::new(1);
        let report = p.run(&1, &mut ctx);
        assert_eq!(report.output(), Some(&2));
        assert_eq!(report.selected.as_deref(), Some("acting"));
    }

    #[test]
    fn parallel_selection_falls_to_hot_spare() {
        // Acting component produces an invalid output; spare takes over.
        let test1 = FnAcceptance::new("nonneg", |_: &i32, out: &i32| *out >= 0);
        let test2 = FnAcceptance::new("nonneg", |_: &i32, out: &i32| *out >= 0);
        let p = ParallelSelection::new()
            .with_component(pure_variant("acting", 10, |_: &i32| -1), Box::new(test1))
            .with_component(pure_variant("spare", 10, |x: &i32| x + 2), Box::new(test2));
        let mut ctx = ExecContext::new(1);
        let report = p.run(&1, &mut ctx);
        assert_eq!(report.output(), Some(&3));
        assert_eq!(report.selected.as_deref(), Some("spare"));
    }

    #[test]
    fn parallel_selection_rejects_when_no_component_validates() {
        let test = FnAcceptance::new("never", |_: &i32, _: &i32| false);
        let p = ParallelSelection::new()
            .with_component(pure_variant("a", 1, |x: &i32| *x), Box::new(test));
        let mut ctx = ExecContext::new(1);
        let report = p.run(&1, &mut ctx);
        assert_eq!(
            report.verdict,
            Verdict::rejected(RejectionReason::AcceptanceFailed)
        );
    }

    #[test]
    fn parallel_selection_all_failed() {
        let test = FnAcceptance::new("any", |_: &i32, _: &i32| true);
        let p = ParallelSelection::new().with_component(failing_variant("f"), Box::new(test));
        let mut ctx = ExecContext::new(1);
        let report = p.run(&1, &mut ctx);
        assert_eq!(
            report.verdict,
            Verdict::rejected(RejectionReason::AllFailed)
        );
    }

    #[test]
    fn empty_patterns_reject() {
        let p: ParallelSelection<i32, i32> = ParallelSelection::new();
        let mut ctx = ExecContext::new(1);
        assert!(!p.run(&1, &mut ctx).is_accepted());
        assert!(p.is_empty());

        let p: ParallelEvaluation<i32, i32> = ParallelEvaluation::new(MajorityVoter::new());
        let mut ctx = ExecContext::new(1);
        assert!(!p.run(&1, &mut ctx).is_accepted());
        assert!(p.is_empty());
    }

    #[test]
    fn traced_run_emits_pattern_variant_and_verdict_events() {
        use redundancy_obs::{EventKind, Point, RingBufferObserver, SpanKind, SpanStatus};

        let ring = RingBufferObserver::shared(64);
        let p = ParallelEvaluation::new(MajorityVoter::new())
            .with_variant(pure_variant("good1", 10, |x: &i32| x * 2))
            .with_variant(pure_variant("good2", 20, |x: &i32| x * 2))
            .with_variant(failing_variant("crasher"));
        let mut ctx = ExecContext::new(1).with_observer(ring.clone());
        let report = p.run(&10, &mut ctx);
        assert_eq!(report.output(), Some(&20));

        let events = ring.events();
        // pattern start, 3 x (variant start + end), verdict, pattern end.
        assert_eq!(events.len(), 9);
        assert!(matches!(
            &events[0].kind,
            EventKind::SpanStart {
                kind: SpanKind::Pattern {
                    name: "parallel_evaluation"
                }
            }
        ));
        assert!(matches!(
            &events[1].kind,
            EventKind::SpanStart { kind: SpanKind::Variant { name } } if *name == "good1"
        ));
        // The crasher's span ends with its failure kind.
        assert!(matches!(
            &events[6].kind,
            EventKind::SpanEnd {
                status: SpanStatus::Failed { kind: "crash" },
                ..
            }
        ));
        assert!(matches!(
            &events[7].kind,
            EventKind::Point(Point::Verdict {
                accepted: true,
                support: 2,
                dissent: 1,
                rejection: None,
            })
        ));
        match &events[8].kind {
            EventKind::SpanEnd { status, cost } => {
                assert_eq!(
                    *status,
                    SpanStatus::Accepted {
                        support: 2,
                        dissent: 1
                    }
                );
                assert_eq!(cost.virtual_ns, 20, "critical path");
                assert_eq!(cost.invocations, 3);
            }
            other => panic!("expected pattern SpanEnd, got {other:?}"),
        }
        // Variant spans are parented under the pattern span.
        assert_eq!(events[1].parent, events[0].span);
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        use redundancy_obs::RingBufferObserver;

        let build = || {
            ParallelEvaluation::new(MajorityVoter::new())
                .with_variant(pure_variant("a", 10, |x: &i32| x + 1))
                .with_variant(pure_variant("b", 30, |x: &i32| x + 1))
                .with_variant(failing_variant("c"))
        };
        let mut plain = ExecContext::new(77);
        let mut traced = ExecContext::new(77).with_observer(RingBufferObserver::shared(256));
        let r1 = build().run(&5, &mut plain);
        let r2 = build().run(&5, &mut traced);
        assert_eq!(r1.verdict, r2.verdict);
        assert_eq!(r1.cost, r2.cost);
        for (a, b) in r1.outcomes.iter().zip(r2.outcomes.iter()) {
            assert_eq!(a.result, b.result);
            assert_eq!(a.cost, b.cost);
        }
    }

    #[test]
    fn report_cost_is_per_run_not_cumulative() {
        // Regression: reports used to copy the context's cumulative meter,
        // so the second pattern run on a shared context double-counted the
        // first run's cost.
        let build = || {
            ParallelEvaluation::new(MajorityVoter::new())
                .with_variant(pure_variant("a", 10, |x: &i32| x * 2))
                .with_variant(pure_variant("b", 20, |x: &i32| x * 2))
        };
        let mut ctx = ExecContext::new(5);
        let first = build().run(&1, &mut ctx);
        let second = build().run(&1, &mut ctx);
        assert_eq!(first.cost, second.cost);
        assert_eq!(second.cost.virtual_ns, 20); // critical path of run 2 only
        assert_eq!(second.cost.invocations, 2);
        // The context itself still meters cumulatively across runs.
        assert_eq!(ctx.cost().virtual_ns, 40);
        assert_eq!(ctx.cost().invocations, 4);

        // Same guarantee for parallel selection on the same warm context.
        let test = FnAcceptance::new("any", |_: &i32, _: &i32| true);
        let sel = ParallelSelection::new()
            .with_component(pure_variant("c", 7, |x: &i32| x + 1), Box::new(test));
        let report = sel.run(&1, &mut ctx);
        assert_eq!(report.cost.virtual_ns, 7);
        assert_eq!(report.cost.invocations, 1);
    }

    #[test]
    fn eager_sequential_skips_unneeded_variants() {
        use redundancy_obs::{EventKind, Point, RingBufferObserver, SpanStatus};

        let ring = RingBufferObserver::shared(64);
        let p = ParallelEvaluation::new(MajorityVoter::new())
            .with_policy(DecisionPolicy::Eager)
            .with_variant(pure_variant("a", 10, |x: &i32| x * 2))
            .with_variant(pure_variant("b", 20, |x: &i32| x * 2))
            .with_variant(pure_variant("c", 30, |x: &i32| x * 2))
            .with_variant(pure_variant("d", 40, |x: &i32| x * 2))
            .with_variant(pure_variant("e", 50, |x: &i32| x * 2));
        let mut ctx = ExecContext::new(1).with_observer(ring.clone());
        let report = p.run(&10, &mut ctx);

        // 3 of 5 agreeing fixes a majority; d and e never run.
        assert_eq!(report.output(), Some(&20));
        assert_eq!(report.executed(), 3);
        assert_eq!(report.skipped(), 2);
        assert_eq!(report.outcomes.len(), 5);
        assert_eq!(report.outcomes[3].result, Err(VariantFailure::Skipped));
        assert_eq!(report.outcomes[4].result, Err(VariantFailure::Skipped));
        // Cost covers only the executed prefix: critical path 30, work 60.
        assert_eq!(report.cost.virtual_ns, 30);
        assert_eq!(report.cost.work_units, 60);
        assert_eq!(report.cost.invocations, 3);

        let events = ring.events();
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Point(Point::EarlyDecision {
                executed: 3,
                total: 5
            })
        )));
        // Skipped variants still get first-class (zero-cost) spans.
        let skipped_spans = events
            .iter()
            .filter(|e| {
                matches!(
                    &e.kind,
                    EventKind::SpanEnd {
                        status: SpanStatus::Failed { kind: "skipped" },
                        cost,
                    } if *cost == redundancy_obs::CostSnapshot::ZERO
                )
            })
            .count();
        assert_eq!(skipped_spans, 2);
    }

    #[test]
    fn eager_matches_exhaustive_disposition_and_output() {
        let build = |policy| {
            ParallelEvaluation::new(MajorityVoter::new())
                .with_policy(policy)
                .with_variant(pure_variant("a", 10, |x: &i32| x + 1))
                .with_variant(pure_variant("b", 30, |x: &i32| x + 1))
                .with_variant(failing_variant("c"))
                .with_variant(pure_variant("d", 20, |x: &i32| x + 2))
                .with_variant(pure_variant("e", 25, |x: &i32| x + 1))
        };
        let mut c1 = ExecContext::new(42);
        let exhaustive = build(DecisionPolicy::Exhaustive).run(&5, &mut c1);
        let mut c2 = ExecContext::new(42);
        let eager = build(DecisionPolicy::Eager).run(&5, &mut c2);
        assert_eq!(exhaustive.is_accepted(), eager.is_accepted());
        assert_eq!(exhaustive.output(), eager.output());
        // Early exit can only make the run cheaper.
        assert!(eager.cost.work_units <= exhaustive.cost.work_units);
        assert!(eager.cost.virtual_ns <= exhaustive.cost.virtual_ns);
    }

    #[test]
    fn eager_threaded_cancels_stragglers() {
        use redundancy_obs::{EventKind, Point, RingBufferObserver};

        let ring = RingBufferObserver::shared(64);
        let straggler: BoxedVariant<i32, i32> = Box::new(FnVariant::new(
            "straggler",
            |x: &i32, ctx: &mut ExecContext| {
                // Cooperative long-running loop: each charge checks the
                // cancellation token, each sleep yields real time so the
                // cancel reliably lands mid-flight.
                for _ in 0..2_000 {
                    ctx.charge(1).map_err(|_| VariantFailure::Timeout)?;
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
                Ok(*x)
            },
        ));
        let p = ParallelEvaluation::new(MajorityVoter::new())
            .with_mode(ExecutionMode::Threaded)
            .with_policy(DecisionPolicy::Eager)
            .with_variant(pure_variant("a", 10, |x: &i32| x * 2))
            .with_variant(pure_variant("b", 20, |x: &i32| x * 2))
            .with_variant(straggler);
        let mut ctx = ExecContext::new(9).with_observer(ring.clone());
        let report = p.run(&10, &mut ctx);

        // Two agreeing of three fix the majority regardless of the
        // straggler; the straggler is cooperatively cancelled.
        assert_eq!(report.output(), Some(&20));
        assert_eq!(report.outcomes[2].result, Err(VariantFailure::Cancelled));
        assert_eq!(report.cancelled(), 1);
        assert_eq!(report.early_exited(), 1);
        let events = ring.events();
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Point(Point::VariantCancelled { variant }) if *variant == "straggler"
        )));
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Point(Point::EarlyDecision {
                executed: 2,
                total: 3
            })
        )));
    }

    #[test]
    fn eager_selection_skips_lower_priority_components() {
        let t = || {
            Box::new(FnAcceptance::new("nonneg", |_: &i32, out: &i32| *out >= 0))
                as BoxedAcceptance<i32, i32>
        };
        let p = ParallelSelection::new()
            .with_policy(DecisionPolicy::Eager)
            .with_component(pure_variant("acting", 10, |_: &i32| -5), t())
            .with_component(pure_variant("spare1", 10, |x: &i32| x + 2), t())
            .with_component(pure_variant("spare2", 10, |x: &i32| x + 3), t());
        let mut ctx = ExecContext::new(3);
        let report = p.run(&4, &mut ctx);
        assert_eq!(report.output(), Some(&6));
        assert_eq!(report.selected.as_deref(), Some("spare1"));
        assert_eq!(report.skipped(), 1);
        assert_eq!(report.outcomes[2].result, Err(VariantFailure::Skipped));
    }

    #[test]
    fn eager_with_batch_only_adjudicator_never_exits_early() {
        use crate::adjudicator::voting::MedianVoter;
        // Median depends on every outcome: the blanket adapter keeps it
        // correct under the eager policy by never deciding early.
        let build = |policy| {
            ParallelEvaluation::new(MedianVoter::new())
                .with_policy(policy)
                .with_variant(pure_variant("a", 10, |x: &i32| x + 1))
                .with_variant(pure_variant("b", 20, |x: &i32| x + 5))
                .with_variant(pure_variant("c", 30, |x: &i32| x + 9))
        };
        let mut c1 = ExecContext::new(4);
        let exhaustive = build(DecisionPolicy::Exhaustive).run(&1, &mut c1);
        let mut c2 = ExecContext::new(4);
        let eager = build(DecisionPolicy::Eager).run(&1, &mut c2);
        assert_eq!(exhaustive.verdict, eager.verdict);
        assert_eq!(exhaustive.cost, eager.cost);
        assert_eq!(eager.skipped(), 0);
    }

    #[test]
    fn eager_unreachable_rejects_from_prefix() {
        // Quorum 3 of 3 with an early crash: acceptance becomes
        // unreachable after the first outcome; b and c are skipped.
        use crate::adjudicator::voting::QuorumVoter;
        let p = ParallelEvaluation::new(QuorumVoter::new(3))
            .with_policy(DecisionPolicy::Eager)
            .with_variant(failing_variant("crasher"))
            .with_variant(pure_variant("b", 20, |x: &i32| x + 1))
            .with_variant(pure_variant("c", 30, |x: &i32| x + 1));
        let mut ctx = ExecContext::new(2);
        let report = p.run(&1, &mut ctx);
        assert!(!report.is_accepted());
        assert_eq!(report.executed(), 1);
        assert_eq!(report.skipped(), 2);
    }

    #[test]
    fn parallel_selection_threaded_matches_sequential() {
        let build = |mode| {
            let t1 = FnAcceptance::new("nonneg", |_: &i32, out: &i32| *out >= 0);
            let t2 = FnAcceptance::new("nonneg", |_: &i32, out: &i32| *out >= 0);
            ParallelSelection::new()
                .with_mode(mode)
                .with_component(pure_variant("a", 10, |_: &i32| -5), Box::new(t1))
                .with_component(pure_variant("b", 20, |x: &i32| x * 2), Box::new(t2))
        };
        let mut c1 = ExecContext::new(3);
        let mut c2 = ExecContext::new(3);
        let seq = build(ExecutionMode::Sequential).run(&4, &mut c1);
        let thr = build(ExecutionMode::Threaded).run(&4, &mut c2);
        assert_eq!(seq.verdict, thr.verdict);
        assert_eq!(seq.selected, thr.selected);
    }
}
