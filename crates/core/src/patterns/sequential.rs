//! Figure 1(c): the *sequential alternatives* pattern.
//!
//! Unlike the parallel engines, this pattern never routes through the
//! batch adjudication kernel ([`crate::adjudicator::batch`]): each
//! alternative is checked by an explicit acceptance test the moment it
//! finishes, so there is no complete outcome row to vote over — the
//! pattern is inherently eager and its adjudication is per-variant.

use redundancy_obs::{Point, SpanKind};

use crate::adjudicator::acceptance::{AcceptanceTest, BoxedAcceptance};
use crate::context::ExecContext;
use crate::outcome::{RejectionReason, Verdict};
use crate::patterns::{emit_verdict, verdict_status, DecisionPolicy, PatternReport};
use crate::variant::{run_contained, BoxedVariant};

type RollbackHook = Box<dyn Fn(&mut ExecContext) + Send + Sync>;

/// Figure 1(c): alternatives execute one at a time; an adjudicator checks
/// each result and promotes the next alternative on failure.
///
/// This is the skeleton of recovery blocks, retry blocks (data diversity),
/// registry-based recovery and dynamic service substitution. A rollback
/// hook restores a consistent state between attempts, as recovery blocks
/// require (Randell's "recovery cache").
///
/// # Examples
///
/// ```
/// use redundancy_core::adjudicator::acceptance::FnAcceptance;
/// use redundancy_core::context::ExecContext;
/// use redundancy_core::patterns::SequentialAlternatives;
/// use redundancy_core::variant::pure_variant;
///
/// let rb = SequentialAlternatives::new(FnAcceptance::new(
///     "positive",
///     |_in: &i32, out: &i32| *out > 0,
/// ))
/// .with_variant(pure_variant("primary-buggy", 10, |_x: &i32| -1))
/// .with_variant(pure_variant("alternate", 12, |x: &i32| x + 1));
///
/// let mut ctx = ExecContext::new(0);
/// let report = rb.run(&1, &mut ctx);
/// assert_eq!(report.into_output(), Some(2));
/// ```
pub struct SequentialAlternatives<I, O> {
    variants: Vec<BoxedVariant<I, O>>,
    test: BoxedAcceptance<I, O>,
    rollback: Option<RollbackHook>,
    max_attempts: Option<usize>,
}

impl<I, O> SequentialAlternatives<I, O> {
    /// Creates the pattern with the acceptance test shared by every
    /// alternative.
    #[must_use]
    pub fn new(test: impl AcceptanceTest<I, O> + 'static) -> Self {
        Self {
            variants: Vec::new(),
            test: Box::new(test),
            rollback: None,
            max_attempts: None,
        }
    }

    /// Adds an alternative (builder style). Insertion order is execution
    /// order: the first variant is the primary block.
    #[must_use]
    pub fn with_variant(mut self, variant: BoxedVariant<I, O>) -> Self {
        self.variants.push(variant);
        self
    }

    /// Adds an alternative.
    pub fn push_variant(&mut self, variant: BoxedVariant<I, O>) {
        self.variants.push(variant);
    }

    /// Installs a rollback hook invoked before each non-primary attempt, as
    /// recovery blocks require to restore a consistent state.
    #[must_use]
    pub fn with_rollback(
        mut self,
        rollback: impl Fn(&mut ExecContext) + Send + Sync + 'static,
    ) -> Self {
        self.rollback = Some(Box::new(rollback));
        self
    }

    /// Caps the number of attempted alternatives (default: all).
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = Some(max_attempts);
        self
    }

    /// Accepts a decision policy for API uniformity with the parallel
    /// patterns. Sequential alternatives are *inherently* eager — the
    /// pattern stops at the first accepted result and later alternatives
    /// never run — so both policies behave identically and this builder is
    /// a documented no-op.
    #[must_use]
    pub fn with_policy(self, policy: DecisionPolicy) -> Self {
        let _ = policy;
        self
    }

    /// The decision policy in effect: always
    /// [`DecisionPolicy::Eager`], the pattern's inherent behavior.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        DecisionPolicy::Eager
    }

    /// Number of alternatives.
    #[must_use]
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether the pattern has no alternatives.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Executes alternatives in order until one passes the acceptance test.
    ///
    /// Virtual time is the *sum* of the attempts made — the pattern's
    /// defining cost trade-off against parallel evaluation (§4.1).
    pub fn run(&self, input: &I, ctx: &mut ExecContext) -> PatternReport<O>
    where
        O: Clone,
    {
        let span = ctx.obs_begin(|| SpanKind::Pattern {
            name: "sequential_alternatives",
        });
        let before = ctx.cost();
        if self.variants.is_empty() {
            let verdict = Verdict::rejected(RejectionReason::NoOutcomes);
            emit_verdict(ctx, &verdict);
            ctx.obs_end(
                span,
                verdict_status(&verdict),
                ctx.cost().delta_since(before).snapshot(),
            );
            return PatternReport {
                verdict,
                outcomes: Vec::new(),
                cost: ctx.cost().delta_since(before),
                selected: None,
            }
            .recorded();
        }
        let limit = self
            .max_attempts
            .map_or(self.variants.len(), |m| m.min(self.variants.len()));
        let mut outcomes = Vec::new();
        let mut any_silent_rejection = false;
        for (i, variant) in self.variants.iter().take(limit).enumerate() {
            if i > 0 {
                if let Some(rollback) = &self.rollback {
                    ctx.obs_emit(|| Point::Rollback {
                        label: "pre-alternate",
                    });
                    rollback(ctx);
                }
            }
            let mut child = ctx.fork(i as u64);
            let outcome = run_contained(variant.as_ref(), input, &mut child);
            ctx.add_sequential_cost(outcome.cost);
            let accepted = outcome.output().map(|out| self.test.accept(input, out));
            outcomes.push(outcome);
            match accepted {
                Some(true) => {
                    let last = outcomes.last().expect("just pushed");
                    let output = last.output().expect("accepted outcome").clone();
                    let selected = Some(last.variant.clone());
                    let verdict = Verdict::accepted(output, 1, outcomes.len() - 1);
                    emit_verdict(ctx, &verdict);
                    ctx.obs_end(
                        span,
                        verdict_status(&verdict),
                        ctx.cost().delta_since(before).snapshot(),
                    );
                    return PatternReport {
                        verdict,
                        cost: ctx.cost().delta_since(before),
                        outcomes,
                        selected,
                    }
                    .recorded();
                }
                Some(false) => any_silent_rejection = true,
                None => {}
            }
        }
        let reason = if any_silent_rejection {
            RejectionReason::AcceptanceFailed
        } else {
            RejectionReason::AllFailed
        };
        let verdict = Verdict::rejected(reason);
        emit_verdict(ctx, &verdict);
        ctx.obs_end(
            span,
            verdict_status(&verdict),
            ctx.cost().delta_since(before).snapshot(),
        );
        PatternReport {
            verdict,
            cost: ctx.cost().delta_since(before),
            outcomes,
            selected: None,
        }
        .recorded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjudicator::acceptance::FnAcceptance;
    use crate::outcome::VariantFailure;
    use crate::variant::{pure_variant, FnVariant};

    fn positive_test() -> FnAcceptance<impl Fn(&i32, &i32) -> bool> {
        FnAcceptance::new("positive", |_: &i32, out: &i32| *out > 0)
    }

    #[test]
    fn primary_succeeds_without_trying_alternates() {
        let p = SequentialAlternatives::new(positive_test())
            .with_variant(pure_variant("primary", 10, |x: &i32| x + 1))
            .with_variant(pure_variant("alternate", 50, |x: &i32| x + 2));
        let mut ctx = ExecContext::new(0);
        let report = p.run(&1, &mut ctx);
        assert_eq!(report.output(), Some(&2));
        assert_eq!(report.executed(), 1);
        assert_eq!(report.cost.virtual_ns, 10); // alternate never ran
        assert_eq!(report.selected.as_deref(), Some("primary"));
    }

    #[test]
    fn falls_through_to_alternate_and_sums_cost() {
        let p = SequentialAlternatives::new(positive_test())
            .with_variant(pure_variant("primary", 10, |_: &i32| -1))
            .with_variant(pure_variant("alternate", 50, |x: &i32| x + 2));
        let mut ctx = ExecContext::new(0);
        let report = p.run(&1, &mut ctx);
        assert_eq!(report.output(), Some(&3));
        assert_eq!(report.executed(), 2);
        assert_eq!(report.cost.virtual_ns, 60); // sequential: 10 + 50
        assert_eq!(report.selected.as_deref(), Some("alternate"));
    }

    #[test]
    fn detectable_failures_also_trigger_fallback() {
        let crasher: BoxedVariant<i32, i32> =
            Box::new(FnVariant::new("crasher", |_: &i32, _: &mut ExecContext| {
                Err(VariantFailure::crash("boom"))
            }));
        let p = SequentialAlternatives::new(positive_test())
            .with_variant(crasher)
            .with_variant(pure_variant("alternate", 5, |x: &i32| *x));
        let mut ctx = ExecContext::new(0);
        let report = p.run(&9, &mut ctx);
        assert_eq!(report.output(), Some(&9));
    }

    #[test]
    fn rejects_when_all_alternates_rejected() {
        let p = SequentialAlternatives::new(positive_test())
            .with_variant(pure_variant("a", 1, |_: &i32| -1))
            .with_variant(pure_variant("b", 1, |_: &i32| -2));
        let mut ctx = ExecContext::new(0);
        let report = p.run(&1, &mut ctx);
        assert_eq!(
            report.verdict,
            Verdict::rejected(RejectionReason::AcceptanceFailed)
        );
    }

    #[test]
    fn rejects_all_failed_when_every_attempt_crashes() {
        let mk = |name: &str| -> BoxedVariant<i32, i32> {
            Box::new(FnVariant::new(name, |_: &i32, _: &mut ExecContext| {
                Err(VariantFailure::Timeout)
            }))
        };
        let p = SequentialAlternatives::new(positive_test())
            .with_variant(mk("a"))
            .with_variant(mk("b"));
        let mut ctx = ExecContext::new(0);
        let report = p.run(&1, &mut ctx);
        assert_eq!(
            report.verdict,
            Verdict::rejected(RejectionReason::AllFailed)
        );
    }

    #[test]
    fn rollback_runs_before_each_retry() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let rollbacks = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&rollbacks);
        let p = SequentialAlternatives::new(positive_test())
            .with_rollback(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .with_variant(pure_variant("a", 1, |_: &i32| -1))
            .with_variant(pure_variant("b", 1, |_: &i32| -1))
            .with_variant(pure_variant("c", 1, |x: &i32| *x));
        let mut ctx = ExecContext::new(0);
        let report = p.run(&5, &mut ctx);
        assert_eq!(report.output(), Some(&5));
        // Rolled back before attempts 2 and 3 but not before the primary.
        assert_eq!(rollbacks.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn max_attempts_caps_execution() {
        let p = SequentialAlternatives::new(positive_test())
            .with_max_attempts(1)
            .with_variant(pure_variant("a", 1, |_: &i32| -1))
            .with_variant(pure_variant("b", 1, |x: &i32| *x));
        let mut ctx = ExecContext::new(0);
        let report = p.run(&5, &mut ctx);
        assert!(!report.is_accepted());
        assert_eq!(report.executed(), 1);
    }

    #[test]
    fn report_cost_is_per_run_not_cumulative() {
        // Regression: the second run on a shared context used to report
        // the cumulative meter instead of its own attempts.
        let build = || {
            SequentialAlternatives::new(positive_test())
                .with_variant(pure_variant("primary", 10, |_: &i32| -1))
                .with_variant(pure_variant("alternate", 50, |x: &i32| x + 2))
        };
        let mut ctx = ExecContext::new(0);
        let first = build().run(&1, &mut ctx);
        let second = build().run(&1, &mut ctx);
        assert_eq!(first.cost, second.cost);
        assert_eq!(second.cost.virtual_ns, 60); // 10 + 50, this run only
        assert_eq!(ctx.cost().virtual_ns, 120); // context stays cumulative
    }

    #[test]
    fn empty_pattern_rejects() {
        let p: SequentialAlternatives<i32, i32> = SequentialAlternatives::new(positive_test());
        let mut ctx = ExecContext::new(0);
        assert_eq!(
            p.run(&1, &mut ctx).verdict,
            Verdict::rejected(RejectionReason::NoOutcomes)
        );
    }
}
