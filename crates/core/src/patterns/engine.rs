//! The shared streaming engine behind the parallel Figure-1 patterns.
//!
//! Under [`DecisionPolicy::Eager`](crate::patterns::DecisionPolicy), a
//! pattern does not "run all, then adjudicate": outcomes are fed to a
//! [`StreamJudge`] strictly in variant order as they become available, and
//! the moment the verdict is mathematically fixed the engine stops paying
//! for redundancy it no longer needs:
//!
//! - in [`ExecutionMode::Sequential`], variants whose turn never came are
//!   *skipped* — recorded as [`VariantFailure::Skipped`] outcomes with a
//!   zero-cost variant span, since they were never forked or started;
//! - in [`ExecutionMode::Threaded`], every variant has already been
//!   spawned, so stragglers are *cooperatively cancelled* through a
//!   [`CancelToken`] checked at each `ExecContext::charge`; they surface
//!   as [`VariantFailure::Cancelled`] outcomes carrying the partial cost
//!   they accrued before noticing.
//!
//! Determinism: the verdict only ever depends on outcomes fed in variant
//! order, so it is reproducible across runs and thread schedules. Which
//! stragglers got cancelled (vs. finished just in time) in threaded mode
//! is inherently timing-dependent — the *verdict* is not.

use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::sync::mpsc;

use redundancy_obs::{CostSnapshot, Point, SpanKind, SpanStatus};

use crate::adjudicator::incremental::Decision;
use crate::context::{CancelToken, ExecContext};
use crate::outcome::{VariantFailure, VariantOutcome, Verdict};
use crate::patterns::ExecutionMode;
use crate::variant::{run_contained, BoxedVariant};

/// How a streaming pattern turns an ordered outcome stream into a verdict.
/// Parallel evaluation adapts an
/// [`IncrementalAdjudicator`](crate::adjudicator::IncrementalAdjudicator);
/// parallel selection validates each outcome with its per-component
/// acceptance test.
pub(crate) trait StreamJudge<O> {
    /// Feeds the outcome of variant `idx`. Called strictly in variant
    /// order; never called again after a final decision.
    fn feed(&mut self, idx: usize, outcome: &VariantOutcome<O>) -> Decision<O>;

    /// Draws the verdict from the executed outcomes when the stream ended
    /// undecided, or from the fed prefix after
    /// [`Decision::Unreachable`].
    fn conclude(&mut self, outcomes: &[VariantOutcome<O>]) -> Verdict<O>;
}

/// What an eager engine run produced.
pub(crate) struct StreamRun<O> {
    /// One outcome per variant, in variant order (including skipped and
    /// cancelled entries).
    pub outcomes: Vec<VariantOutcome<O>>,
    /// The verdict.
    pub verdict: Verdict<O>,
}

/// Runs `variants` under the eager policy, feeding `judge` in variant
/// order and exiting early once the verdict is fixed. Charges the
/// critical-path (parallel) cost of all executed work to `ctx`.
pub(crate) fn run_eager<I, O, V, J>(
    variants: &[V],
    input: &I,
    ctx: &mut ExecContext,
    mode: ExecutionMode,
    judge: &mut J,
) -> StreamRun<O>
where
    I: Sync,
    O: Send,
    V: Borrow<BoxedVariant<I, O>> + Sync,
    J: StreamJudge<O>,
{
    match mode {
        ExecutionMode::Sequential => run_eager_sequential(variants, input, ctx, judge),
        ExecutionMode::Threaded => run_eager_threaded(variants, input, ctx, judge),
    }
}

fn run_eager_sequential<I, O, V, J>(
    variants: &[V],
    input: &I,
    ctx: &mut ExecContext,
    judge: &mut J,
) -> StreamRun<O>
where
    V: Borrow<BoxedVariant<I, O>>,
    J: StreamJudge<O>,
{
    let total = variants.len();
    let mut outcomes: Vec<VariantOutcome<O>> = Vec::with_capacity(total);
    let mut verdict: Option<Verdict<O>> = None;
    for (i, variant) in variants.iter().enumerate() {
        if verdict.is_some() {
            // The verdict is fixed: this variant's turn never comes. It is
            // not forked (keeping the executed prefix's random streams
            // identical to the exhaustive policy's) and costs nothing, but
            // it is first-class in the report and the trace.
            let name = variant.borrow().symbol();
            let span = ctx.obs_begin(|| SpanKind::Variant { name });
            ctx.obs_end(
                span,
                SpanStatus::Failed { kind: "skipped" },
                CostSnapshot::ZERO,
            );
            outcomes.push(VariantOutcome::failed(
                name.resolve(),
                VariantFailure::Skipped,
            ));
            continue;
        }
        let mut child = ctx.fork(i as u64);
        let outcome = run_contained(variant.borrow().as_ref(), input, &mut child);
        let decision = judge.feed(i, &outcome);
        outcomes.push(outcome);
        if decision.is_final() {
            ctx.obs_emit(|| Point::EarlyDecision {
                executed: i + 1,
                total,
            });
            verdict = Some(match decision {
                Decision::Decided(v) => v,
                // Acceptance is off the table: the rejection follows from
                // the prefix fed so far.
                _ => judge.conclude(&outcomes),
            });
        }
    }
    ctx.add_parallel_costs(outcomes.iter().map(|o| o.cost));
    let verdict = verdict.unwrap_or_else(|| judge.conclude(&outcomes));
    StreamRun { outcomes, verdict }
}

fn run_eager_threaded<I, O, V, J>(
    variants: &[V],
    input: &I,
    ctx: &mut ExecContext,
    judge: &mut J,
) -> StreamRun<O>
where
    I: Sync,
    O: Send,
    V: Borrow<BoxedVariant<I, O>> + Sync,
    J: StreamJudge<O>,
{
    let total = variants.len();
    let token = CancelToken::new();
    // Fork every child up front, in variant order, exactly as the
    // exhaustive threaded engine does — the random streams (and thus each
    // variant's behavior up to cancellation) are identical across
    // policies. Each child carries the shared cancellation token.
    let children: Vec<ExecContext> = (0..total)
        .map(|i| ctx.fork(i as u64).with_cancel_token(token.clone()))
        .collect();

    let mut ordered: Vec<VariantOutcome<O>> = Vec::with_capacity(total);
    let mut verdict: Option<Verdict<O>> = None;
    // Variant threads are crash-contained (run_contained catches panics),
    // so the scope never propagates a panic.
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for (i, (variant, mut child)) in variants.iter().zip(children).enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let outcome = run_contained(variant.borrow().as_ref(), input, &mut child);
                // The receiver outlives the scope; a send can only fail if
                // the main thread panicked, which already aborts the test.
                let _ = tx.send((i, outcome));
            });
        }
        drop(tx);
        // Buffer out-of-order arrivals and feed the judge strictly in
        // variant order, so the verdict never depends on thread timing.
        let mut pending: BTreeMap<usize, VariantOutcome<O>> = BTreeMap::new();
        for _ in 0..total {
            let (i, outcome) = rx.recv().expect("every variant thread sends once");
            pending.insert(i, outcome);
            while let Some(next) = pending.remove(&ordered.len()) {
                let idx = ordered.len();
                ordered.push(next);
                if verdict.is_none() {
                    let decision = judge.feed(idx, &ordered[idx]);
                    if decision.is_final() {
                        // Fire the token first so stragglers stop charging
                        // as soon as possible.
                        token.cancel();
                        ctx.obs_emit(|| Point::EarlyDecision {
                            executed: idx + 1,
                            total,
                        });
                        verdict = Some(match decision {
                            Decision::Decided(v) => v,
                            _ => judge.conclude(&ordered),
                        });
                    }
                }
            }
        }
    });
    ctx.add_parallel_costs(ordered.iter().map(|o| o.cost));
    let verdict = verdict.unwrap_or_else(|| judge.conclude(&ordered));
    StreamRun {
        outcomes: ordered,
        verdict,
    }
}
