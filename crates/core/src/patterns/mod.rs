//! The inter-component architectural patterns of the paper's Figure 1.
//!
//! - [`ParallelEvaluation`] — Figure 1(a): all alternatives execute, one
//!   adjudicator merges the results (N-version programming, process
//!   replicas, N-copy data diversity).
//! - [`ParallelSelection`] — Figure 1(b): alternatives execute in parallel,
//!   each result is validated by its own adjudicator, the first validated
//!   "acting" result wins and failing components are disabled
//!   (self-checking programming).
//! - [`SequentialAlternatives`] — Figure 1(c): alternatives execute one at
//!   a time; on rejection the next alternative is promoted (recovery
//!   blocks, retry blocks, service substitution, registry-based recovery).
//!
//! Each engine supports two [`ExecutionMode`]s: `Sequential` (deterministic
//! in-thread simulation, virtual time still modeling parallelism as
//! critical path) and `Threaded` (real OS threads via `std::thread::scope`).
//! Results are identical across modes because every variant draws from its
//! own forked random stream.
//!
//! Orthogonally, the parallel engines support two [`DecisionPolicy`]s:
//! `Exhaustive` (run every alternative, then adjudicate — bit-identical to
//! the historical engines) and `Eager` (stream outcomes through an
//! [`IncrementalAdjudicator`] and stop paying for redundancy the moment
//! the verdict is mathematically fixed).
//!
//! [`ParallelEvaluation`]: parallel::ParallelEvaluation
//! [`ParallelSelection`]: parallel::ParallelSelection
//! [`SequentialAlternatives`]: sequential::SequentialAlternatives
//! [`IncrementalAdjudicator`]: crate::adjudicator::IncrementalAdjudicator

pub(crate) mod engine;
pub mod parallel;
pub mod sequential;

pub use parallel::{ParallelEvaluation, ParallelSelection};
pub use sequential::SequentialAlternatives;

use redundancy_obs::{Point, SpanStatus};

use crate::context::ExecContext;
use crate::cost::Cost;
use crate::outcome::{VariantOutcome, Verdict};

/// Maps a verdict to the span status an ending pattern/technique span
/// reports.
pub fn verdict_status<O>(verdict: &Verdict<O>) -> SpanStatus {
    match verdict {
        Verdict::Accepted {
            support, dissent, ..
        } => SpanStatus::Accepted {
            support: *support,
            dissent: *dissent,
        },
        Verdict::Rejected { reason } => SpanStatus::Rejected {
            reason: reason.kind(),
        },
    }
}

/// Wraps a pattern invocation in a `Technique` span: the technique
/// modules call this so traces attribute each pattern run (and the
/// variant executions under it) to the named technique, and so metrics
/// can aggregate per technique. A no-op shell when the context is
/// untraced.
pub fn run_technique_span<O>(
    ctx: &mut ExecContext,
    name: &'static str,
    body: impl FnOnce(&mut ExecContext) -> PatternReport<O>,
) -> PatternReport<O> {
    let span = ctx.obs_begin(|| redundancy_obs::SpanKind::Technique { name });
    let before = ctx.cost();
    let report = body(ctx);
    ctx.obs_end(
        span,
        verdict_status(&report.verdict),
        ctx.cost().delta_since(before).snapshot(),
    );
    report
}

/// Emits the adjudicator's conclusion as a [`Point::Verdict`] event (a
/// no-op when the context is untraced).
pub fn emit_verdict<O>(ctx: &mut ExecContext, verdict: &Verdict<O>) {
    ctx.obs_emit(|| match verdict {
        Verdict::Accepted {
            support, dissent, ..
        } => Point::Verdict {
            accepted: true,
            support: *support,
            dissent: *dissent,
            rejection: None,
        },
        Verdict::Rejected { reason } => Point::Verdict {
            accepted: false,
            support: 0,
            dissent: 0,
            rejection: Some(reason.kind()),
        },
    });
}

/// How a pattern engine executes its alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// Run alternatives in the calling thread, one after another, but
    /// account virtual time as if parallel (critical path). Deterministic
    /// and cheap; the default for simulation.
    #[default]
    Sequential,
    /// Run alternatives on real OS threads (scoped threads).
    Threaded,
}

/// When a pattern engine commits to a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecisionPolicy {
    /// Execute every alternative, then adjudicate the full outcome set.
    /// The historical behavior, and bit-identical to it: summaries,
    /// reports, costs and traces are unchanged on fixed seeds.
    #[default]
    Exhaustive,
    /// Stream outcomes through the adjudicator's incremental interface
    /// (in variant order) and stop as soon as the verdict is
    /// mathematically fixed: not-yet-started alternatives are skipped
    /// ([`VariantFailure::Skipped`](crate::outcome::VariantFailure)) and
    /// in-flight stragglers are cooperatively cancelled
    /// ([`VariantFailure::Cancelled`](crate::outcome::VariantFailure)).
    /// The accepted/rejected disposition and output always match
    /// `Exhaustive`; support/dissent counts reflect only the outcomes
    /// actually fed, and costs are lower.
    Eager,
}

/// Everything a pattern run produced: the verdict, the raw outcomes, and
/// the aggregate cost under the pattern's timing semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternReport<O> {
    /// The adjudicated result.
    pub verdict: Verdict<O>,
    /// Outcome of every alternative that was executed, in variant order
    /// (parallel patterns) or attempt order (sequential alternatives).
    pub outcomes: Vec<VariantOutcome<O>>,
    /// Cost of *this pattern run* — the delta accrued on the context
    /// during `run`, not the context's cumulative meter, so reports from
    /// several runs on one context can be compared directly. Parallel
    /// patterns use critical-path virtual time, sequential alternatives
    /// sum attempt times.
    pub cost: Cost,
    /// Name of the variant whose output was selected, when the pattern
    /// selects a single component's result.
    pub selected: Option<String>,
}

impl<O> PatternReport<O> {
    /// Whether the pattern produced an accepted output.
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        self.verdict.is_accepted()
    }

    /// The accepted output, if any.
    #[must_use]
    pub fn output(&self) -> Option<&O> {
        self.verdict.output()
    }

    /// Consumes the report, returning the accepted output if any.
    #[must_use]
    pub fn into_output(self) -> Option<O> {
        self.verdict.into_output()
    }

    /// Number of alternatives that actually started executing (everything
    /// except variants skipped by an eager early decision).
    #[must_use]
    pub fn executed(&self) -> usize {
        self.outcomes.len() - self.skipped()
    }

    /// Number of alternatives never started because the verdict was fixed
    /// before their turn (`DecisionPolicy::Eager`, sequential mode).
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.result, Err(crate::outcome::VariantFailure::Skipped)))
            .count()
    }

    /// Number of alternatives cooperatively cancelled mid-flight after the
    /// verdict was fixed (`DecisionPolicy::Eager`, threaded mode).
    #[must_use]
    pub fn cancelled(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.result, Err(crate::outcome::VariantFailure::Cancelled)))
            .count()
    }

    /// Number of alternatives whose full execution was avoided by an eager
    /// early decision (skipped + cancelled).
    #[must_use]
    pub fn early_exited(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(&o.result, Err(f) if f.is_early_exit()))
            .count()
    }

    /// Mirrors this run into the flight recorder (pattern runs plus
    /// executed/skipped/cancelled variant counts) and returns the report.
    /// Every engine calls this on its way out, so live telemetry sees
    /// pattern activity even from harnesses that never touch a
    /// `Campaign`; one relaxed load when the recorder is off. With it
    /// on, the cost is one thread-local lookup, a single pass over the
    /// outcomes, and two shard adds (four when early exit fired) — this
    /// sits inside every trial of a monitored campaign, so it shares
    /// the recorder's few-ns-per-trial budget.
    pub(crate) fn recorded(self) -> Self {
        use crate::outcome::VariantFailure;
        use redundancy_obs::telemetry::{self, Counter};
        if let Some(shard) = telemetry::active_shard() {
            let mut skipped = 0u64;
            let mut cancelled = 0u64;
            for outcome in &self.outcomes {
                match &outcome.result {
                    Err(VariantFailure::Skipped) => skipped += 1,
                    Err(VariantFailure::Cancelled) => cancelled += 1,
                    _ => {}
                }
            }
            shard.add(Counter::PatternRuns, 1);
            shard.add(
                Counter::VariantsExecuted,
                self.outcomes.len() as u64 - skipped,
            );
            if skipped > 0 {
                shard.add(Counter::VariantsSkipped, skipped);
            }
            if cancelled > 0 {
                shard.add(Counter::VariantsCancelled, cancelled);
            }
        }
        self
    }
}
