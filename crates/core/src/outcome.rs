//! Outcomes of variant executions and verdicts of adjudicators.
//!
//! A [`VariantOutcome`] is what one alternative produced — either a value or
//! a [`VariantFailure`]. A [`Verdict`] is what an
//! [`Adjudicator`](crate::adjudicator::Adjudicator) concluded from a set of
//! outcomes. Note the asymmetry the paper emphasizes: a variant can fail
//! *detectably* (crash, timeout, error) or *silently* (wrong output); only
//! adjudication can surface the latter.

use std::fmt;

use crate::cost::Cost;

/// A detectable failure of a single variant execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VariantFailure {
    /// The variant crashed (panicked or aborted).
    Crash {
        /// Human-readable crash reason.
        message: String,
    },
    /// The variant exceeded its fuel budget (a simulated hang).
    Timeout,
    /// The variant returned an explicit error.
    Error {
        /// Error description.
        message: String,
    },
    /// The variant produced no result (e.g. an unavailable service).
    Omission,
    /// The variant was cooperatively cancelled mid-flight: the verdict was
    /// already fixed, so its remaining work was abandoned
    /// (`DecisionPolicy::Eager`, threaded mode).
    Cancelled,
    /// The variant was never started: the verdict was fixed before its
    /// turn (`DecisionPolicy::Eager`, sequential mode).
    Skipped,
}

impl VariantFailure {
    /// Convenience constructor for crashes.
    #[must_use]
    pub fn crash(message: impl Into<String>) -> Self {
        VariantFailure::Crash {
            message: message.into(),
        }
    }

    /// Convenience constructor for explicit errors.
    #[must_use]
    pub fn error(message: impl Into<String>) -> Self {
        VariantFailure::Error {
            message: message.into(),
        }
    }

    /// Short machine-friendly label for the failure kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            VariantFailure::Crash { .. } => "crash",
            VariantFailure::Timeout => "timeout",
            VariantFailure::Error { .. } => "error",
            VariantFailure::Omission => "omission",
            VariantFailure::Cancelled => "cancelled",
            VariantFailure::Skipped => "skipped",
        }
    }

    /// Whether this failure means the variant never ran to completion
    /// because an early decision made its result irrelevant.
    #[must_use]
    pub fn is_early_exit(&self) -> bool {
        matches!(self, VariantFailure::Cancelled | VariantFailure::Skipped)
    }
}

impl fmt::Display for VariantFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantFailure::Crash { message } => write!(f, "crash: {message}"),
            VariantFailure::Timeout => f.write_str("timeout"),
            VariantFailure::Error { message } => write!(f, "error: {message}"),
            VariantFailure::Omission => f.write_str("omission"),
            VariantFailure::Cancelled => f.write_str("cancelled after early decision"),
            VariantFailure::Skipped => f.write_str("skipped after early decision"),
        }
    }
}

impl std::error::Error for VariantFailure {}

/// The result of executing one variant, with its identity and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantOutcome<O> {
    /// Name of the variant that produced this outcome.
    pub variant: String,
    /// The produced value, or a detectable failure.
    pub result: Result<O, VariantFailure>,
    /// Cost of this execution.
    pub cost: Cost,
}

impl<O> VariantOutcome<O> {
    /// Creates a successful outcome.
    #[must_use]
    pub fn ok(variant: impl Into<String>, output: O) -> Self {
        Self {
            variant: variant.into(),
            result: Ok(output),
            cost: Cost::ZERO,
        }
    }

    /// Creates a failed outcome.
    #[must_use]
    pub fn failed(variant: impl Into<String>, failure: VariantFailure) -> Self {
        Self {
            variant: variant.into(),
            result: Err(failure),
            cost: Cost::ZERO,
        }
    }

    /// Attaches a cost to the outcome.
    #[must_use]
    pub fn with_cost(mut self, cost: Cost) -> Self {
        self.cost = cost;
        self
    }

    /// The output, if the variant did not detectably fail.
    #[must_use]
    pub fn output(&self) -> Option<&O> {
        self.result.as_ref().ok()
    }

    /// Whether the variant completed without a detectable failure.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// The conclusion an adjudicator draws from a set of variant outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict<O> {
    /// An output was accepted. `support` counts the outcomes agreeing with
    /// it, `dissent` those disagreeing or failed.
    Accepted {
        /// The adjudicated output.
        output: O,
        /// Number of outcomes supporting the output.
        support: usize,
        /// Number of outcomes contradicting the output (including
        /// detectable failures).
        dissent: usize,
    },
    /// No output could be accepted.
    Rejected {
        /// Why adjudication failed (no majority, all failed, test failed…).
        reason: RejectionReason,
    },
}

/// Why an adjudicator rejected all candidate outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RejectionReason {
    /// No candidate reached the required agreement threshold.
    NoQuorum,
    /// Every variant failed detectably.
    AllFailed,
    /// An explicit acceptance test rejected every candidate.
    AcceptanceFailed,
    /// There were no outcomes to adjudicate.
    NoOutcomes,
    /// Outputs disagreed where unanimity was required.
    Disagreement,
}

impl RejectionReason {
    /// Short machine-friendly label for the rejection reason (the label
    /// carried by observability events).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RejectionReason::NoQuorum => "no_quorum",
            RejectionReason::AllFailed => "all_failed",
            RejectionReason::AcceptanceFailed => "acceptance_failed",
            RejectionReason::NoOutcomes => "no_outcomes",
            RejectionReason::Disagreement => "disagreement",
        }
    }
}

impl fmt::Display for RejectionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RejectionReason::NoQuorum => "no quorum among variant outputs",
            RejectionReason::AllFailed => "all variants failed detectably",
            RejectionReason::AcceptanceFailed => "acceptance test rejected every candidate",
            RejectionReason::NoOutcomes => "no outcomes to adjudicate",
            RejectionReason::Disagreement => "variant outputs disagree",
        })
    }
}

impl<O> Verdict<O> {
    /// Creates an accepted verdict.
    #[must_use]
    pub fn accepted(output: O, support: usize, dissent: usize) -> Self {
        Verdict::Accepted {
            output,
            support,
            dissent,
        }
    }

    /// Creates a rejected verdict.
    #[must_use]
    pub fn rejected(reason: RejectionReason) -> Self {
        Verdict::Rejected { reason }
    }

    /// Whether an output was accepted.
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted { .. })
    }

    /// The accepted output, if any.
    #[must_use]
    pub fn output(&self) -> Option<&O> {
        match self {
            Verdict::Accepted { output, .. } => Some(output),
            Verdict::Rejected { .. } => None,
        }
    }

    /// Consumes the verdict, returning the accepted output if any.
    #[must_use]
    pub fn into_output(self) -> Option<O> {
        match self {
            Verdict::Accepted { output, .. } => Some(output),
            Verdict::Rejected { .. } => None,
        }
    }

    /// Maps the output type.
    #[must_use]
    pub fn map<P, F: FnOnce(O) -> P>(self, f: F) -> Verdict<P> {
        match self {
            Verdict::Accepted {
                output,
                support,
                dissent,
            } => Verdict::Accepted {
                output: f(output),
                support,
                dissent,
            },
            Verdict::Rejected { reason } => Verdict::Rejected { reason },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let ok = VariantOutcome::ok("v1", 42);
        assert!(ok.is_ok());
        assert_eq!(ok.output(), Some(&42));

        let bad: VariantOutcome<i32> = VariantOutcome::failed("v2", VariantFailure::Timeout);
        assert!(!bad.is_ok());
        assert_eq!(bad.output(), None);
    }

    #[test]
    fn failure_kinds_and_display() {
        assert_eq!(VariantFailure::crash("boom").kind(), "crash");
        assert_eq!(VariantFailure::Timeout.kind(), "timeout");
        assert_eq!(VariantFailure::error("e").kind(), "error");
        assert_eq!(VariantFailure::Omission.kind(), "omission");
        assert_eq!(VariantFailure::Cancelled.kind(), "cancelled");
        assert_eq!(VariantFailure::Skipped.kind(), "skipped");
        assert!(VariantFailure::Cancelled.is_early_exit());
        assert!(VariantFailure::Skipped.is_early_exit());
        assert!(!VariantFailure::Timeout.is_early_exit());
        assert_eq!(VariantFailure::crash("boom").to_string(), "crash: boom");
    }

    #[test]
    fn verdict_accessors() {
        let v = Verdict::accepted(7, 2, 1);
        assert!(v.is_accepted());
        assert_eq!(v.output(), Some(&7));
        assert_eq!(v.clone().into_output(), Some(7));

        let r: Verdict<i32> = Verdict::rejected(RejectionReason::NoQuorum);
        assert!(!r.is_accepted());
        assert_eq!(r.output(), None);
        assert_eq!(r.into_output(), None);
    }

    #[test]
    fn verdict_map_preserves_counts() {
        let v = Verdict::accepted(7, 3, 2).map(|x| x * 2);
        match v {
            Verdict::Accepted {
                output,
                support,
                dissent,
            } => {
                assert_eq!(output, 14);
                assert_eq!(support, 3);
                assert_eq!(dissent, 2);
            }
            Verdict::Rejected { .. } => panic!("expected accepted"),
        }
    }

    #[test]
    fn rejection_reasons_display_and_kind() {
        for reason in [
            RejectionReason::NoQuorum,
            RejectionReason::AllFailed,
            RejectionReason::AcceptanceFailed,
            RejectionReason::NoOutcomes,
            RejectionReason::Disagreement,
        ] {
            assert!(!reason.to_string().is_empty());
            assert!(!reason.kind().is_empty());
            assert!(!reason.kind().contains(' '), "kinds are machine labels");
        }
        assert_eq!(RejectionReason::NoQuorum.kind(), "no_quorum");
    }

    #[test]
    fn with_cost_attaches() {
        let c = Cost::of_invocation(3, 30);
        let o = VariantOutcome::ok("v", 1).with_cost(c);
        assert_eq!(o.cost, c);
    }
}
