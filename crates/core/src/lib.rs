//! Core abstractions of the `redundancy` framework.
//!
//! This crate implements the conceptual skeleton of Carzaniga, Gorla and
//! Pezzè's *Handling Software Faults with Redundancy*: the taxonomy of
//! redundancy-based fault-handling mechanisms ([`taxonomy`]), the unit of
//! redundancy ([`variant::Variant`]), the components that judge redundant
//! results ([`adjudicator`]), and the three inter-component architectural
//! patterns of the paper's Figure 1 ([`patterns`]).
//!
//! Higher layers build on these: `redundancy-techniques` implements every
//! technique of the paper's Table 2 on top of these patterns, and
//! `redundancy-sim` measures them under injected faults.
//!
//! # Quick example: three-version programming
//!
//! ```
//! use redundancy_core::adjudicator::voting::MajorityVoter;
//! use redundancy_core::context::ExecContext;
//! use redundancy_core::patterns::ParallelEvaluation;
//! use redundancy_core::variant::pure_variant;
//!
//! // Three independently designed "versions", one of them faulty.
//! let nvp = ParallelEvaluation::new(MajorityVoter::new())
//!     .with_variant(pure_variant("team-a", 10, |x: &i64| x.pow(2)))
//!     .with_variant(pure_variant("team-b", 14, |x: &i64| x * *x))
//!     .with_variant(pure_variant("team-c", 9, |x: &i64| x * x + 1)); // bug
//!
//! let mut ctx = ExecContext::new(42);
//! let report = nvp.run(&12, &mut ctx);
//! assert_eq!(report.into_output(), Some(144)); // the fault is outvoted
//! ```

#![warn(missing_docs)]

pub mod adjudicator;
pub mod context;
pub mod cost;
pub mod outcome;
pub mod patterns;
pub mod rng;
pub mod taxonomy;
pub mod technique;
pub mod variant;

pub use adjudicator::Adjudicator;
pub use context::ExecContext;
pub use cost::Cost;
pub use outcome::{RejectionReason, VariantFailure, VariantOutcome, Verdict};
pub use patterns::{
    ExecutionMode, ParallelEvaluation, ParallelSelection, PatternReport, SequentialAlternatives,
};
pub use taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultClass, FaultSet, Intention,
    RedundancyType,
};
pub use technique::{Technique, TechniqueEntry};
pub use variant::{BoxedVariant, FnVariant, Variant};

/// The observability substrate (re-exported so downstream crates can name
/// event types without a separate dependency edge).
pub use redundancy_obs as obs;
