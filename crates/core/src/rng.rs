//! A small, fast, deterministic pseudo-random number generator.
//!
//! Every stochastic decision in the framework — fault activation, workload
//! generation, environment perturbation — flows through [`SplitMix64`], so
//! that a single `u64` seed reproduces an entire experiment bit-for-bit.
//! The generator is the SplitMix64 algorithm of Steele, Lea and Flood, which
//! passes BigCrush and is trivially splittable: [`SplitMix64::split`] derives
//! an independent stream, which the pattern engines use to give each variant
//! its own stream regardless of execution order (sequential or threaded).
//!
//! # Examples
//!
//! ```
//! use redundancy_core::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//!
//! // Same seed, same sequence.
//! let mut rng2 = SplitMix64::new(42);
//! assert_eq!(rng2.next_u64(), a);
//! ```

/// Deterministic, splittable 64-bit PRNG (SplitMix64).
///
/// Not cryptographically secure; used only for reproducible simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds produce
    /// independent-looking streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns the next pseudo-random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits, the standard trick.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire-style rejection-free enough for simulation purposes:
        // widening multiply maps next_u64 into [0, span).
        let x = self.next_u64();
        lo + ((u128::from(x) * u128::from(span)) >> 64) as u64
    }

    /// Returns a uniformly distributed index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index from an empty collection");
        self.range_u64(0, len as u64) as usize
    }

    /// Returns a uniformly distributed `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u64;
        let off = self.range_u64(0, span);
        (lo as i128 + i128::from(off)) as i64
    }

    /// Returns a sample from the exponential distribution with the given
    /// `rate` (λ). Used for failure inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -u.ln() / rate
    }

    /// Returns an approximately normally distributed sample
    /// (Irwin–Hall sum of 12 uniforms; adequate for latency jitter).
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        mean + (acc - 6.0) * stddev
    }

    /// Derives an independent generator. The derived stream does not overlap
    /// with this one for any practical sample count.
    #[must_use]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x6a09_e667_f3bc_c909)
    }

    /// Derives an independent generator keyed by `stream`: the same
    /// `(seed, stream)` pair always yields the same derived generator,
    /// regardless of how many values were drawn in between.
    #[must_use]
    pub fn fork(&self, stream: u64) -> SplitMix64 {
        let mut mix = SplitMix64::new(self.state ^ stream.wrapping_mul(GOLDEN_GAMMA));
        // burn one output so consecutive streams decorrelate
        let _ = mix.next_u64();
        mix
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5eed_5eed_5eed_5eed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = SplitMix64::new(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SplitMix64::new(6);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let w = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.range_u64(0, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(0).range_u64(5, 5);
    }

    #[test]
    fn fork_is_stable() {
        let rng = SplitMix64::new(9);
        let mut f1 = rng.fork(3);
        let mut f2 = rng.fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g = rng.fork(4);
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn split_diverges_from_parent() {
        let mut parent = SplitMix64::new(10);
        let mut child = parent.split();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SplitMix64::new(11);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "observed mean {mean}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = SplitMix64::new(12);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "observed mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SplitMix64::new(14);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
