//! Cost accounting for redundant executions.
//!
//! The paper's §4.1 ("Costs and efficacy of code redundancy") contrasts
//! *design* costs (developing the redundant artifacts) with *execution*
//! costs (running them). [`Cost`] records both so that experiments such as
//! E6 can plot the cost/reliability frontier of N-version programming,
//! recovery blocks and self-checking programming.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Accumulated cost of one or more executions.
///
/// Work units are abstract: one unit corresponds to one unit of simulated
/// computation charged through
/// [`ExecContext::charge`](crate::context::ExecContext::charge). Virtual
/// time is tracked separately so that latency-style measurements (e.g.
/// pattern comparisons in experiment F1) do not depend on host scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cost {
    /// Number of variant invocations performed.
    pub invocations: u64,
    /// Abstract work units consumed.
    pub work_units: u64,
    /// Virtual elapsed time in nanoseconds. For parallel patterns this is
    /// the *critical path*, not the sum.
    pub virtual_ns: u64,
    /// Design cost of the artifacts exercised (sum of variant design
    /// costs, counted once per invocation set by the pattern engines).
    pub design_cost: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        invocations: 0,
        work_units: 0,
        virtual_ns: 0,
        design_cost: 0.0,
    };

    /// Creates a cost of a single invocation with the given work.
    #[must_use]
    pub fn of_invocation(work_units: u64, virtual_ns: u64) -> Cost {
        Cost {
            invocations: 1,
            work_units,
            virtual_ns,
            design_cost: 0.0,
        }
    }

    /// Combines costs of activities that ran *in parallel*: work and
    /// invocations add, virtual time takes the maximum (critical path).
    #[must_use]
    pub fn parallel(self, other: Cost) -> Cost {
        Cost {
            invocations: self.invocations + other.invocations,
            work_units: self.work_units + other.work_units,
            virtual_ns: self.virtual_ns.max(other.virtual_ns),
            design_cost: self.design_cost + other.design_cost,
        }
    }

    /// Combines costs of activities that ran *one after another*.
    #[must_use]
    pub fn sequential(self, other: Cost) -> Cost {
        self + other
    }

    /// The cost accrued since an `earlier` snapshot of the same meter
    /// (saturating, so a reset meter yields zero rather than wrapping).
    /// Used to attribute per-span costs when the underlying
    /// [`ExecContext`](crate::context::ExecContext) meter is cumulative.
    #[must_use]
    pub fn delta_since(self, earlier: Cost) -> Cost {
        Cost {
            invocations: self.invocations.saturating_sub(earlier.invocations),
            work_units: self.work_units.saturating_sub(earlier.work_units),
            virtual_ns: self.virtual_ns.saturating_sub(earlier.virtual_ns),
            design_cost: (self.design_cost - earlier.design_cost).max(0.0),
        }
    }

    /// Converts to the dependency-free snapshot carried by observability
    /// events.
    #[must_use]
    pub fn snapshot(self) -> redundancy_obs::CostSnapshot {
        redundancy_obs::CostSnapshot {
            invocations: self.invocations,
            work_units: self.work_units,
            virtual_ns: self.virtual_ns,
            design_cost: self.design_cost,
        }
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            invocations: self.invocations + rhs.invocations,
            work_units: self.work_units + rhs.work_units,
            virtual_ns: self.virtual_ns + rhs.virtual_ns,
            design_cost: self.design_cost + rhs.design_cost,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} invocations, {} work units, {} ns virtual, design {:.1}",
            self.invocations, self.work_units, self.virtual_ns, self.design_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_identity() {
        let c = Cost::of_invocation(10, 100);
        assert_eq!(c + Cost::ZERO, c);
        assert_eq!(Cost::ZERO.parallel(c), c);
    }

    #[test]
    fn sequential_adds_time() {
        let a = Cost::of_invocation(5, 50);
        let b = Cost::of_invocation(7, 70);
        let s = a.sequential(b);
        assert_eq!(s.invocations, 2);
        assert_eq!(s.work_units, 12);
        assert_eq!(s.virtual_ns, 120);
    }

    #[test]
    fn parallel_takes_critical_path() {
        let a = Cost::of_invocation(5, 50);
        let b = Cost::of_invocation(7, 70);
        let p = a.parallel(b);
        assert_eq!(p.invocations, 2);
        assert_eq!(p.work_units, 12);
        assert_eq!(p.virtual_ns, 70);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cost = (1..=3).map(|i| Cost::of_invocation(i, i * 10)).sum();
        assert_eq!(total.invocations, 3);
        assert_eq!(total.work_units, 6);
        assert_eq!(total.virtual_ns, 60);
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let before = Cost::of_invocation(10, 100);
        let after = before + Cost::of_invocation(5, 50);
        let delta = after.delta_since(before);
        assert_eq!(delta, Cost::of_invocation(5, 50));
        // A reset meter (after < before) saturates to zero.
        assert_eq!(Cost::ZERO.delta_since(before), Cost::ZERO);
    }

    #[test]
    fn snapshot_mirrors_fields() {
        let c = Cost {
            invocations: 2,
            work_units: 30,
            virtual_ns: 40,
            design_cost: 1.5,
        };
        let s = c.snapshot();
        assert_eq!(s.invocations, 2);
        assert_eq!(s.work_units, 30);
        assert_eq!(s.virtual_ns, 40);
        assert!((s.design_cost - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Cost::ZERO.to_string().is_empty());
    }
}
