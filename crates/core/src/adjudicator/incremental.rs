//! Streaming adjudication: verdicts that fix before every variant ran.
//!
//! The paper's Figure-1 patterns differ precisely in *when* the
//! adjudicator can commit: parallel selection commits on the first
//! validated component, while classic parallel evaluation waits for every
//! alternative. But most voters are decided long before the last vote is
//! in — a majority of 5 is fixed after 3 agreements — and every variant
//! executed past that point is pure waste. This module gives adjudicators
//! a streaming interface so pattern engines can stop early:
//!
//! - [`IncrementalAdjudicator`] consumes one [`VariantOutcome`] at a time
//!   and reports a [`Decision`]: the verdict is fixed
//!   ([`Decision::Decided`]), acceptance has become mathematically
//!   impossible ([`Decision::Unreachable`]), or more outcomes are needed
//!   ([`Decision::Undecided`]).
//! - Every batch [`Adjudicator`] streams automatically through the
//!   blanket [`Adjudicator::begin_incremental`] adapter (it simply never
//!   decides early); the voting family overrides it with native
//!   implementations that do.
//!
//! A verdict from an early decision carries *partial* support/dissent
//! counts — only the outcomes actually fed — which is exactly the honest
//! number: the skipped variants voted for nobody.

use crate::adjudicator::Adjudicator;
use crate::outcome::{VariantOutcome, Verdict};

/// What a streaming adjudicator knows after consuming one more outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision<O> {
    /// The verdict is mathematically fixed: no combination of the
    /// remaining outcomes can change it. Engines may skip or cancel every
    /// variant that has not finished.
    Decided(Verdict<O>),
    /// The verdict still depends on outcomes not yet fed.
    Undecided,
    /// No acceptance is reachable any more (the final verdict will be a
    /// rejection, though its precise reason may depend on the remaining
    /// outcomes). Engines may stop and draw the rejection from the
    /// outcomes fed so far.
    Unreachable,
}

impl<O> Decision<O> {
    /// Whether this decision ends the stream (either variant of early
    /// exit).
    #[must_use]
    pub fn is_final(&self) -> bool {
        !matches!(self, Decision::Undecided)
    }
}

/// An adjudicator consuming variant outcomes one at a time, in variant
/// order. Obtain one from [`Adjudicator::begin_incremental`].
pub trait IncrementalAdjudicator<O> {
    /// Feeds the outcome of the next variant.
    ///
    /// Once a final decision ([`Decision::Decided`] or
    /// [`Decision::Unreachable`]) is returned, the stream is over and
    /// `feed` must not be called again.
    fn feed(&mut self, outcome: &VariantOutcome<O>) -> Decision<O>;

    /// Draws the final verdict from the full slice of executed outcomes.
    /// Called when the stream ended without a final decision (and, after
    /// [`Decision::Unreachable`], with the prefix fed so far); must agree
    /// with the batch [`Adjudicator::adjudicate`] on the same slice.
    fn finish(&mut self, outcomes: &[VariantOutcome<O>]) -> Verdict<O>;
}

/// The blanket adapter wrapping any batch [`Adjudicator`]: it never
/// decides early and delegates the final verdict to the batch
/// `adjudicate`. This is what keeps every existing adjudicator —
/// including median, tolerance and trimmed-mean voters, whose verdicts
/// genuinely depend on every outcome — correct under streaming engines.
pub struct BatchIncremental<'a, A: ?Sized> {
    adjudicator: &'a A,
}

impl<'a, A: ?Sized> BatchIncremental<'a, A> {
    /// Wraps a batch adjudicator.
    pub fn new(adjudicator: &'a A) -> Self {
        Self { adjudicator }
    }
}

impl<O, A> IncrementalAdjudicator<O> for BatchIncremental<'_, A>
where
    A: Adjudicator<O> + ?Sized,
{
    fn feed(&mut self, _outcome: &VariantOutcome<O>) -> Decision<O> {
        Decision::Undecided
    }

    fn finish(&mut self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        self.adjudicator.adjudicate(outcomes)
    }
}

/// Native streaming state for the threshold voting family (majority,
/// quorum, plurality): tracks agreement classes as outcomes arrive and
/// decides as soon as the leading class is unassailable, or acceptance is
/// unreachable.
pub struct StreamingVote<'a, O> {
    adjudicator: &'a dyn Adjudicator<O>,
    threshold: usize,
    total: usize,
    fed: usize,
    /// `(representative output, count)` per agreement class, in first
    /// appearance order.
    classes: Vec<(O, usize)>,
}

impl<'a, O> StreamingVote<'a, O> {
    /// Creates streaming state for a voter requiring `threshold` agreeing
    /// outputs out of `total` variants. `adjudicator` supplies the batch
    /// semantics for [`finish`](IncrementalAdjudicator::finish).
    pub fn new(adjudicator: &'a dyn Adjudicator<O>, threshold: usize, total: usize) -> Self {
        Self {
            adjudicator,
            threshold,
            total,
            fed: 0,
            classes: Vec::new(),
        }
    }
}

impl<O: Clone + PartialEq> IncrementalAdjudicator<O> for StreamingVote<'_, O> {
    fn feed(&mut self, outcome: &VariantOutcome<O>) -> Decision<O> {
        self.fed += 1;
        if let Ok(output) = &outcome.result {
            match self.classes.iter_mut().find(|(rep, _)| rep == output) {
                Some((_, count)) => *count += 1,
                None => self.classes.push((output.clone(), 1)),
            }
        }
        let remaining = self.total.saturating_sub(self.fed);
        let Some(best_idx) = (0..self.classes.len()).max_by_key(|&i| self.classes[i].1) else {
            // No successful outcome yet: acceptance needs at least
            // `threshold` future agreements.
            return if remaining < self.threshold {
                Decision::Unreachable
            } else {
                Decision::Undecided
            };
        };
        let best = self.classes[best_idx].1;
        // The strongest any class (existing or brand new) can finish at.
        if best + remaining < self.threshold {
            return Decision::Unreachable;
        }
        let second = self
            .classes
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != best_idx)
            .map(|(_, &(_, count))| count)
            .max()
            .unwrap_or(0);
        // Decided only when the leader meets the threshold AND cannot be
        // caught even if every remaining outcome joins the runner-up (or
        // forms a new class). Strict lead also rules out ties, so the
        // same condition is sound for tie-rejecting plurality votes.
        if best >= self.threshold && best > second + remaining {
            let output = self.classes[best_idx].0.clone();
            return Decision::Decided(Verdict::accepted(output, best, self.fed - best));
        }
        Decision::Undecided
    }

    fn finish(&mut self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        self.adjudicator.adjudicate(outcomes)
    }
}

/// Native streaming state for unanimity voting: the first failure or
/// divergence decides (negatively) on the spot, and agreement of all
/// `total` outcomes decides positively at the last feed.
pub struct StreamingUnanimity<'a, O> {
    adjudicator: &'a dyn Adjudicator<O>,
    total: usize,
    fed: usize,
    first: Option<O>,
}

impl<'a, O> StreamingUnanimity<'a, O> {
    /// Creates streaming state over `total` variants.
    pub fn new(adjudicator: &'a dyn Adjudicator<O>, total: usize) -> Self {
        Self {
            adjudicator,
            total,
            fed: 0,
            first: None,
        }
    }
}

impl<O: Clone + PartialEq> IncrementalAdjudicator<O> for StreamingUnanimity<'_, O> {
    fn feed(&mut self, outcome: &VariantOutcome<O>) -> Decision<O> {
        use crate::outcome::RejectionReason;
        self.fed += 1;
        let Ok(output) = &outcome.result else {
            // Batch unanimity rejects `AllFailed` on any failure.
            return Decision::Decided(Verdict::rejected(RejectionReason::AllFailed));
        };
        match &self.first {
            Some(first) if first != output => {
                return Decision::Decided(Verdict::rejected(RejectionReason::Disagreement));
            }
            Some(_) => {}
            None => self.first = Some(output.clone()),
        }
        if self.fed == self.total {
            let first = self.first.clone().expect("at least one success fed");
            Decision::Decided(Verdict::accepted(first, self.total, 0))
        } else {
            Decision::Undecided
        }
    }

    fn finish(&mut self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        self.adjudicator.adjudicate(outcomes)
    }
}

/// Native streaming state for [`FirstSuccess`](crate::adjudicator::FirstSuccess):
/// the first successful outcome decides.
pub struct StreamingFirstSuccess<'a, O> {
    adjudicator: &'a dyn Adjudicator<O>,
    fed: usize,
}

impl<'a, O> StreamingFirstSuccess<'a, O> {
    /// Creates streaming state.
    pub fn new(adjudicator: &'a dyn Adjudicator<O>) -> Self {
        Self {
            adjudicator,
            fed: 0,
        }
    }
}

impl<O: Clone> IncrementalAdjudicator<O> for StreamingFirstSuccess<'_, O> {
    fn feed(&mut self, outcome: &VariantOutcome<O>) -> Decision<O> {
        self.fed += 1;
        match &outcome.result {
            Ok(output) => {
                // Identical to the batch verdict: support 1, dissent = the
                // failures that came before.
                Decision::Decided(Verdict::accepted(output.clone(), 1, self.fed - 1))
            }
            Err(_) => Decision::Undecided,
        }
    }

    fn finish(&mut self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        self.adjudicator.adjudicate(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjudicator::voting::{
        MajorityVoter, MedianVoter, PluralityVoter, QuorumVoter, UnanimityVoter,
    };
    use crate::adjudicator::FirstSuccess;
    use crate::outcome::{RejectionReason, VariantFailure};

    fn ok(v: i64) -> VariantOutcome<i64> {
        VariantOutcome::ok("v", v)
    }

    fn fail() -> VariantOutcome<i64> {
        VariantOutcome::failed("v", VariantFailure::Timeout)
    }

    #[test]
    fn majority_decides_after_unassailable_lead() {
        let adj = MajorityVoter::new();
        let mut inc = adj.begin_incremental(5);
        assert_eq!(inc.feed(&ok(7)), Decision::Undecided);
        assert_eq!(inc.feed(&ok(7)), Decision::Undecided);
        // 3 of 5 agree: majority fixed, two variants never need to run.
        assert_eq!(
            inc.feed(&ok(7)),
            Decision::Decided(Verdict::accepted(7, 3, 0))
        );
    }

    #[test]
    fn majority_unreachable_after_too_many_failures() {
        let adj = MajorityVoter::new();
        let mut inc = adj.begin_incremental(3);
        assert_eq!(inc.feed(&fail()), Decision::Undecided);
        // Best possible is 1 + 1 = 2 but threshold stays 2... second
        // failure leaves one remaining vs threshold 2: unreachable.
        assert_eq!(inc.feed(&fail()), Decision::Unreachable);
    }

    #[test]
    fn quorum_waits_for_strict_lead() {
        // Quorum 2 of 5: two agreements are NOT decisive — another class
        // could still reach 3 and outvote the current leader under batch
        // max-class semantics.
        let adj = QuorumVoter::new(2);
        let mut inc = adj.begin_incremental(5);
        assert_eq!(inc.feed(&ok(1)), Decision::Undecided);
        // 2 of 5 meet the quorum, but a rival class could still reach 3
        // and outvote the leader under batch max-class semantics.
        assert_eq!(inc.feed(&ok(1)), Decision::Undecided);
        // 3 of 5: the two remaining outcomes cannot catch up.
        assert_eq!(
            inc.feed(&ok(1)),
            Decision::Decided(Verdict::accepted(1, 3, 0))
        );
    }

    #[test]
    fn plurality_decides_on_strict_lead() {
        let adj = PluralityVoter::new();
        let mut inc = adj.begin_incremental(4);
        assert_eq!(inc.feed(&ok(9)), Decision::Undecided);
        assert_eq!(inc.feed(&ok(9)), Decision::Undecided);
        // Leader at 3, one remaining: nobody ties or passes it.
        assert_eq!(
            inc.feed(&ok(9)),
            Decision::Decided(Verdict::accepted(9, 3, 0))
        );
    }

    #[test]
    fn unanimity_rejects_on_first_divergence() {
        let adj = UnanimityVoter::new();
        let mut inc = adj.begin_incremental(4);
        assert_eq!(inc.feed(&ok(1)), Decision::Undecided);
        assert_eq!(
            inc.feed(&ok(2)),
            Decision::Decided(Verdict::rejected(RejectionReason::Disagreement))
        );
    }

    #[test]
    fn unanimity_rejects_on_first_failure() {
        let adj = UnanimityVoter::new();
        let mut inc = adj.begin_incremental(4);
        assert_eq!(
            inc.feed(&fail()),
            Decision::Decided(Verdict::rejected(RejectionReason::AllFailed))
        );
    }

    #[test]
    fn unanimity_accepts_only_at_the_end() {
        let adj = UnanimityVoter::new();
        let mut inc = adj.begin_incremental(2);
        assert_eq!(inc.feed(&ok(5)), Decision::Undecided);
        assert_eq!(
            inc.feed(&ok(5)),
            Decision::Decided(Verdict::accepted(5, 2, 0))
        );
    }

    #[test]
    fn first_success_decides_on_first_ok() {
        let adj = FirstSuccess::new();
        let mut inc = adj.begin_incremental(3);
        assert_eq!(inc.feed(&fail()), Decision::Undecided);
        assert_eq!(
            inc.feed(&ok(8)),
            Decision::Decided(Verdict::accepted(8, 1, 1))
        );
    }

    #[test]
    fn batch_adapter_never_decides_early() {
        let adj = MedianVoter::new();
        let mut inc = adj.begin_incremental(3);
        let outcomes = vec![ok(1), ok(2), ok(3)];
        for o in &outcomes {
            assert_eq!(inc.feed(o), Decision::Undecided);
        }
        assert_eq!(inc.finish(&outcomes), adj.adjudicate(&outcomes));
    }

    #[test]
    fn boxed_adjudicator_forwards_native_incremental() {
        // A boxed majority voter must keep its native streaming override,
        // not fall back to the batch adapter.
        let adj: Box<dyn Adjudicator<i64>> = Box::new(MajorityVoter::new());
        let mut inc = adj.begin_incremental(3);
        assert_eq!(inc.feed(&ok(4)), Decision::Undecided);
        assert!(inc.feed(&ok(4)).is_final());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// An arbitrary outcome stream: `Some(v)` succeeds with output
        /// `v`, `None` fails detectably. Values are drawn from a small
        /// range so agreement classes actually form.
        fn outcomes_strategy() -> impl Strategy<Value = Vec<VariantOutcome<i64>>> {
            proptest::collection::vec(proptest::option::of(0i64..4), 0..10).prop_map(|seq| {
                seq.into_iter()
                    .enumerate()
                    .map(|(i, v)| match v {
                        Some(v) => VariantOutcome::ok(format!("v{i}"), v),
                        None => VariantOutcome::failed(format!("v{i}"), VariantFailure::Timeout),
                    })
                    .collect()
            })
        }

        /// Streams `outcomes` through `adj.begin_incremental` and checks
        /// the streaming contract against the batch verdict:
        /// - a `Decided` mid-stream must agree with the batch verdict on
        ///   acceptance, and on the output when accepted;
        /// - `Unreachable` mid-stream implies the batch rejects;
        /// - an undecided full stream must `finish` to exactly the batch
        ///   verdict.
        fn check_incremental_matches_batch(
            adj: &dyn Adjudicator<i64>,
            outcomes: &[VariantOutcome<i64>],
        ) -> Result<(), TestCaseError> {
            let batch = adj.adjudicate(outcomes);
            let mut inc = adj.begin_incremental(outcomes.len());
            for outcome in outcomes {
                match inc.feed(outcome) {
                    Decision::Undecided => {}
                    Decision::Decided(verdict) => {
                        prop_assert_eq!(
                            verdict.is_accepted(),
                            batch.is_accepted(),
                            "early verdict disposition diverged from batch"
                        );
                        if verdict.is_accepted() {
                            prop_assert_eq!(verdict.output(), batch.output());
                        }
                        return Ok(());
                    }
                    Decision::Unreachable => {
                        prop_assert!(
                            !batch.is_accepted(),
                            "unreachable claimed but batch accepted"
                        );
                        return Ok(());
                    }
                }
            }
            prop_assert_eq!(inc.finish(outcomes), batch);
            Ok(())
        }

        proptest! {
            #[test]
            fn majority_incremental_matches_batch(outcomes in outcomes_strategy()) {
                check_incremental_matches_batch(&MajorityVoter::new(), &outcomes)?;
            }

            #[test]
            fn plurality_incremental_matches_batch(outcomes in outcomes_strategy()) {
                check_incremental_matches_batch(&PluralityVoter::new(), &outcomes)?;
            }

            #[test]
            fn quorum_incremental_matches_batch(
                outcomes in outcomes_strategy(),
                quorum in 1usize..4,
            ) {
                check_incremental_matches_batch(&QuorumVoter::new(quorum), &outcomes)?;
            }

            #[test]
            fn unanimity_incremental_matches_batch(outcomes in outcomes_strategy()) {
                check_incremental_matches_batch(&UnanimityVoter::new(), &outcomes)?;
            }

            #[test]
            fn first_success_incremental_matches_batch(outcomes in outcomes_strategy()) {
                check_incremental_matches_batch(&FirstSuccess::new(), &outcomes)?;
            }

            #[test]
            fn batch_adapter_matches_batch_for_median(outcomes in outcomes_strategy()) {
                check_incremental_matches_batch(&MedianVoter::new(), &outcomes)?;
            }
        }
    }
}
