//! Adjudicators: the components that decide which redundant result to trust
//! (paper §3, "Triggers and adjudicators").
//!
//! The paper distinguishes *implicit* adjudicators — built into the
//! redundancy mechanism itself, like the majority vote of N-version
//! programming — from *explicit* adjudicators — designed per application,
//! like recovery-block acceptance tests. Both live here:
//!
//! - [`voting`] provides the implicit family (majority, plurality, quorum,
//!   unanimity, median, numeric tolerance voting);
//! - [`acceptance`] provides the explicit family ([`AcceptanceTest`] and
//!   combinators);
//! - [`incremental`] provides the streaming interface
//!   ([`IncrementalAdjudicator`]) that lets pattern engines fix a verdict
//!   before every variant has run;
//! - [`batch`] provides the branchless campaign back-end: exact-equality
//!   voting rules ([`VoteRule`]) computed over SoA outcome columns, with
//!   a row kernel the pattern engines route Exhaustive runs through.
//!
//! [`AcceptanceTest`]: acceptance::AcceptanceTest

pub mod acceptance;
pub mod batch;
pub mod incremental;
pub mod voting;

use crate::outcome::{RejectionReason, VariantOutcome, Verdict};
use crate::taxonomy::Adjudication;

pub use batch::{OutcomeColumns, RowDecision, RowVerdict, VoteRule};
pub use incremental::{BatchIncremental, Decision, IncrementalAdjudicator};

/// Decides a single output from the outcomes of several variants.
///
/// Object-safe so patterns can hold `Box<dyn Adjudicator<O>>`.
pub trait Adjudicator<O>: Send + Sync {
    /// Identifies the adjudicator in reports.
    fn name(&self) -> &str;

    /// Whether this adjudicator is implicit (built-in comparison) or
    /// explicit (application-specific check) in the paper's taxonomy.
    fn adjudication(&self) -> Adjudication;

    /// Draws a verdict from the given outcomes.
    fn adjudicate(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O>;

    /// Starts a streaming adjudication over `total` variants.
    ///
    /// The default wraps the batch [`adjudicate`](Self::adjudicate) in a
    /// [`BatchIncremental`] adapter that never decides early, so every
    /// adjudicator streams correctly out of the box. Adjudicators whose
    /// verdict can fix before all outcomes are in (the voting family,
    /// [`FirstSuccess`]) override this with native state machines.
    fn begin_incremental<'a>(&'a self, total: usize) -> Box<dyn IncrementalAdjudicator<O> + 'a>
    where
        O: 'a,
    {
        let _ = total;
        Box::new(BatchIncremental::new(self))
    }

    /// The exact-equality [`VoteRule`] this adjudicator computes, if any.
    ///
    /// Returning `Some(rule)` is a promise that
    /// [`adjudicate`](Self::adjudicate) is observably identical to
    /// [`batch::vote_row`] under `rule` with the output's `==` as the
    /// agreement relation — it lets campaign back-ends pack whole batches
    /// of outcome rows into [`OutcomeColumns`] and adjudicate them through
    /// the branchless SoA kernels. Adjudicators whose agreement relation
    /// is not plain equality (acceptance tests, median, tolerance, trimmed
    /// mean) keep the default `None` and always take their scalar path.
    fn vote_rule(&self) -> Option<VoteRule> {
        None
    }

    /// Adjudicates one complete row of outcomes on the batch fast path.
    ///
    /// Pattern engines call this instead of
    /// [`adjudicate`](Self::adjudicate) when every variant has finished
    /// (Exhaustive runs). The default simply delegates to `adjudicate`;
    /// the exact-equality voting family overrides it to route through the
    /// branchless [`batch::vote_row`] kernel when [`batch::enabled`]
    /// returns `true`. Overrides must produce verdicts observably
    /// identical to `adjudicate` — same winner, same tie behavior, same
    /// rejection precedence — so toggling the batch path never changes
    /// results.
    fn adjudicate_batch_row(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        self.adjudicate(outcomes)
    }
}

impl<O> Adjudicator<O> for Box<dyn Adjudicator<O>> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn adjudication(&self) -> Adjudication {
        self.as_ref().adjudication()
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        self.as_ref().adjudicate(outcomes)
    }

    fn begin_incremental<'a>(&'a self, total: usize) -> Box<dyn IncrementalAdjudicator<O> + 'a>
    where
        O: 'a,
    {
        self.as_ref().begin_incremental(total)
    }

    fn vote_rule(&self) -> Option<VoteRule> {
        self.as_ref().vote_rule()
    }

    fn adjudicate_batch_row(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        self.as_ref().adjudicate_batch_row(outcomes)
    }
}

/// Accepts the first outcome that did not detectably fail.
///
/// This is the degenerate adjudicator of plain fail-over (dynamic service
/// substitution, simple retry): it catches crashes, timeouts and omissions
/// but is blind to silent wrong outputs.
///
/// # Examples
///
/// ```
/// use redundancy_core::adjudicator::{Adjudicator, FirstSuccess};
/// use redundancy_core::outcome::{VariantFailure, VariantOutcome};
///
/// let adj = FirstSuccess::new();
/// let outcomes = vec![
///     VariantOutcome::failed("a", VariantFailure::Timeout),
///     VariantOutcome::ok("b", 7),
/// ];
/// assert_eq!(adj.adjudicate(&outcomes).into_output(), Some(7));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstSuccess;

impl FirstSuccess {
    /// Creates the adjudicator.
    #[must_use]
    pub fn new() -> Self {
        FirstSuccess
    }
}

impl<O: Clone> Adjudicator<O> for FirstSuccess {
    fn name(&self) -> &str {
        "first-success"
    }

    fn adjudication(&self) -> Adjudication {
        Adjudication::ReactiveExplicit
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        if outcomes.is_empty() {
            return Verdict::rejected(RejectionReason::NoOutcomes);
        }
        for (idx, outcome) in outcomes.iter().enumerate() {
            if let Ok(output) = &outcome.result {
                return Verdict::accepted(output.clone(), 1, idx);
            }
        }
        Verdict::rejected(RejectionReason::AllFailed)
    }

    fn begin_incremental<'a>(&'a self, _total: usize) -> Box<dyn IncrementalAdjudicator<O> + 'a>
    where
        O: 'a,
    {
        Box::new(incremental::StreamingFirstSuccess::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::VariantFailure;

    #[test]
    fn first_success_skips_failures() {
        let adj = FirstSuccess::new();
        let outcomes = vec![
            VariantOutcome::failed("a", VariantFailure::Omission),
            VariantOutcome::failed("b", VariantFailure::Timeout),
            VariantOutcome::ok("c", "hello"),
        ];
        match adj.adjudicate(&outcomes) {
            Verdict::Accepted {
                output, dissent, ..
            } => {
                assert_eq!(output, "hello");
                assert_eq!(dissent, 2);
            }
            Verdict::Rejected { .. } => panic!("expected acceptance"),
        }
    }

    #[test]
    fn first_success_rejects_when_all_fail() {
        let adj = FirstSuccess::new();
        let outcomes: Vec<VariantOutcome<i32>> = vec![
            VariantOutcome::failed("a", VariantFailure::Timeout),
            VariantOutcome::failed("b", VariantFailure::crash("x")),
        ];
        assert_eq!(
            adj.adjudicate(&outcomes),
            Verdict::rejected(RejectionReason::AllFailed)
        );
    }

    #[test]
    fn first_success_rejects_empty() {
        let adj = FirstSuccess::new();
        let outcomes: Vec<VariantOutcome<i32>> = vec![];
        assert_eq!(
            adj.adjudicate(&outcomes),
            Verdict::rejected(RejectionReason::NoOutcomes)
        );
    }

    #[test]
    fn boxed_adjudicator_delegates() {
        let adj: Box<dyn Adjudicator<i32>> = Box::new(FirstSuccess::new());
        assert_eq!(adj.name(), "first-success");
        assert_eq!(adj.adjudication(), Adjudication::ReactiveExplicit);
        let outcomes = vec![VariantOutcome::ok("a", 1)];
        assert!(adj.adjudicate(&outcomes).is_accepted());
    }
}
