//! Implicit adjudicators: voters that compare redundant outputs.
//!
//! These realize the "general voting algorithm" of N-version programming
//! (Avizienis): outputs are grouped into agreement classes and the class
//! with sufficient support wins. The paper's observation that a system of
//! `2k + 1` versions tolerates `k` faulty results is a direct property of
//! [`MajorityVoter`], verified by the property tests at the bottom of this
//! module and measured by experiment E4.

use crate::adjudicator::batch::{self, VoteRule};
use crate::adjudicator::incremental::{IncrementalAdjudicator, StreamingUnanimity, StreamingVote};
use crate::adjudicator::Adjudicator;
use crate::outcome::{RejectionReason, VariantOutcome, Verdict};
use crate::taxonomy::Adjudication;

/// Groups successful outputs into agreement classes by `eq`, returning
/// `(representative_index, count)` per class, ordered by first appearance.
fn agreement_classes<O, F: Fn(&O, &O) -> bool>(
    outcomes: &[VariantOutcome<O>],
    eq: F,
) -> Vec<(usize, usize)> {
    let mut classes: Vec<(usize, usize)> = Vec::new();
    for (i, outcome) in outcomes.iter().enumerate() {
        let Ok(output) = &outcome.result else {
            continue;
        };
        let mut matched = false;
        for (rep, count) in classes.iter_mut() {
            let rep_output = outcomes[*rep]
                .output()
                .expect("representatives are successful outcomes");
            if eq(rep_output, output) {
                *count += 1;
                matched = true;
                break;
            }
        }
        if !matched {
            classes.push((i, 1));
        }
    }
    classes
}

fn vote<O: Clone>(
    outcomes: &[VariantOutcome<O>],
    eq: impl Fn(&O, &O) -> bool,
    threshold: usize,
    tie_is_rejection: bool,
) -> Verdict<O> {
    if outcomes.is_empty() {
        return Verdict::rejected(RejectionReason::NoOutcomes);
    }
    let classes = agreement_classes(outcomes, eq);
    if classes.is_empty() {
        return Verdict::rejected(RejectionReason::AllFailed);
    }
    let (best_rep, best_count) = classes
        .iter()
        .copied()
        .max_by_key(|&(_, count)| count)
        .expect("non-empty classes");
    if best_count < threshold {
        return Verdict::rejected(RejectionReason::NoQuorum);
    }
    if tie_is_rejection {
        let ties = classes.iter().filter(|&&(_, c)| c == best_count).count();
        if ties > 1 {
            return Verdict::rejected(RejectionReason::Disagreement);
        }
    }
    let output = outcomes[best_rep]
        .output()
        .expect("representative is successful")
        .clone();
    Verdict::accepted(output, best_count, outcomes.len() - best_count)
}

/// Strict-majority voter: accepts an output agreed on by more than half of
/// *all* outcomes (failed outcomes count against the majority, as in
/// classic N-version programming where a crashed version cannot vote).
///
/// # Examples
///
/// ```
/// use redundancy_core::adjudicator::{Adjudicator, voting::MajorityVoter};
/// use redundancy_core::outcome::VariantOutcome;
///
/// let adj = MajorityVoter::new();
/// let outcomes = vec![
///     VariantOutcome::ok("v1", 4),
///     VariantOutcome::ok("v2", 4),
///     VariantOutcome::ok("v3", 9), // one faulty version
/// ];
/// assert_eq!(adj.adjudicate(&outcomes).into_output(), Some(4));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVoter;

impl MajorityVoter {
    /// Creates a strict-majority voter.
    #[must_use]
    pub fn new() -> Self {
        MajorityVoter
    }
}

impl<O: Clone + PartialEq> Adjudicator<O> for MajorityVoter {
    fn name(&self) -> &str {
        "majority-voter"
    }

    fn adjudication(&self) -> Adjudication {
        Adjudication::ReactiveImplicit
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        let threshold = outcomes.len() / 2 + 1;
        vote(outcomes, |a, b| a == b, threshold, false)
    }

    fn begin_incremental<'a>(&'a self, total: usize) -> Box<dyn IncrementalAdjudicator<O> + 'a>
    where
        O: 'a,
    {
        Box::new(StreamingVote::new(self, total / 2 + 1, total))
    }

    fn vote_rule(&self) -> Option<VoteRule> {
        Some(VoteRule::Majority)
    }

    fn adjudicate_batch_row(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        if batch::enabled() {
            batch::vote_row(VoteRule::Majority, |a, b| a == b, outcomes)
        } else {
            self.adjudicate(outcomes)
        }
    }
}

/// Plurality voter: accepts the most common output, requiring only that it
/// beat every other agreement class (ties are rejected). Weaker than
/// majority but tolerates more detectable failures.
#[derive(Debug, Clone, Copy, Default)]
pub struct PluralityVoter;

impl PluralityVoter {
    /// Creates a plurality voter.
    #[must_use]
    pub fn new() -> Self {
        PluralityVoter
    }
}

impl<O: Clone + PartialEq> Adjudicator<O> for PluralityVoter {
    fn name(&self) -> &str {
        "plurality-voter"
    }

    fn adjudication(&self) -> Adjudication {
        Adjudication::ReactiveImplicit
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        vote(outcomes, |a, b| a == b, 1, true)
    }

    fn begin_incremental<'a>(&'a self, total: usize) -> Box<dyn IncrementalAdjudicator<O> + 'a>
    where
        O: 'a,
    {
        // The streaming accept condition requires a strict, uncatchable
        // lead, which subsumes plurality's tie rejection.
        Box::new(StreamingVote::new(self, 1, total))
    }

    fn vote_rule(&self) -> Option<VoteRule> {
        Some(VoteRule::Plurality)
    }

    fn adjudicate_batch_row(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        if batch::enabled() {
            batch::vote_row(VoteRule::Plurality, |a, b| a == b, outcomes)
        } else {
            self.adjudicate(outcomes)
        }
    }
}

/// Quorum voter: accepts an output supported by at least `quorum` outcomes.
/// `QuorumVoter::new(2)` is the comparison adjudicator of self-checking
/// duplex pairs (Laprie et al.).
#[derive(Debug, Clone, Copy)]
pub struct QuorumVoter {
    quorum: usize,
}

impl QuorumVoter {
    /// Creates a voter requiring `quorum` agreeing outputs.
    ///
    /// # Panics
    ///
    /// Panics if `quorum == 0`.
    #[must_use]
    pub fn new(quorum: usize) -> Self {
        assert!(quorum > 0, "quorum must be at least 1");
        Self { quorum }
    }

    /// The required agreement count.
    #[must_use]
    pub fn quorum(&self) -> usize {
        self.quorum
    }
}

impl<O: Clone + PartialEq> Adjudicator<O> for QuorumVoter {
    fn name(&self) -> &str {
        "quorum-voter"
    }

    fn adjudication(&self) -> Adjudication {
        Adjudication::ReactiveImplicit
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        vote(outcomes, |a, b| a == b, self.quorum, false)
    }

    fn begin_incremental<'a>(&'a self, total: usize) -> Box<dyn IncrementalAdjudicator<O> + 'a>
    where
        O: 'a,
    {
        Box::new(StreamingVote::new(self, self.quorum, total))
    }

    fn vote_rule(&self) -> Option<VoteRule> {
        Some(VoteRule::Quorum(self.quorum))
    }

    fn adjudicate_batch_row(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        if batch::enabled() {
            batch::vote_row(VoteRule::Quorum(self.quorum), |a, b| a == b, outcomes)
        } else {
            self.adjudicate(outcomes)
        }
    }
}

/// Unanimity voter: accepts only if *every* outcome succeeded and all
/// outputs agree. This is the adjudicator of N-variant systems for security
/// (Cox et al.): any divergence between replicas signals an attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnanimityVoter;

impl UnanimityVoter {
    /// Creates a unanimity voter.
    #[must_use]
    pub fn new() -> Self {
        UnanimityVoter
    }
}

impl<O: Clone + PartialEq> Adjudicator<O> for UnanimityVoter {
    fn name(&self) -> &str {
        "unanimity-voter"
    }

    fn adjudication(&self) -> Adjudication {
        Adjudication::ReactiveImplicit
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        if outcomes.is_empty() {
            return Verdict::rejected(RejectionReason::NoOutcomes);
        }
        if outcomes.iter().any(|o| !o.is_ok()) {
            return Verdict::rejected(RejectionReason::AllFailed);
        }
        let first = outcomes[0].output().expect("checked success");
        if outcomes
            .iter()
            .skip(1)
            .all(|o| o.output().expect("checked success") == first)
        {
            Verdict::accepted(first.clone(), outcomes.len(), 0)
        } else {
            Verdict::rejected(RejectionReason::Disagreement)
        }
    }

    fn begin_incremental<'a>(&'a self, total: usize) -> Box<dyn IncrementalAdjudicator<O> + 'a>
    where
        O: 'a,
    {
        // Unanimity streams negatively: the first failure or divergence
        // decides rejection on the spot. (When a stream contains both, the
        // incremental rejection *reason* is whichever came first, while
        // the batch voter reports `AllFailed`; the disposition agrees.)
        Box::new(StreamingUnanimity::new(self, total))
    }

    fn vote_rule(&self) -> Option<VoteRule> {
        Some(VoteRule::Unanimity)
    }

    fn adjudicate_batch_row(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        if batch::enabled() {
            batch::vote_row(VoteRule::Unanimity, |a, b| a == b, outcomes)
        } else {
            self.adjudicate(outcomes)
        }
    }
}

/// Median voter for totally ordered outputs: returns the median of the
/// successful outputs. Standard for numeric N-version outputs where exact
/// agreement is unlikely; tolerates up to half-minus-one corrupt values.
///
/// # Conventions
///
/// With an even number of successful outputs the *upper* middle is
/// returned (sorted index `len / 2`) — medians must be real outputs, not
/// interpolations, so one of the two middles has to be picked, and the
/// upper one is what `len / 2` indexing yields for odd counts too.
///
/// `dissent` counts every outcome that did not equal the median — both
/// detectably failed variants and successful-but-different outputs — per
/// the [`Verdict::Accepted`] contract ("contradicting the output,
/// including detectable failures"). Callers needing the crashed/deviating
/// split can recover it from the outcomes slice they already hold.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianVoter;

impl MedianVoter {
    /// Creates a median voter.
    #[must_use]
    pub fn new() -> Self {
        MedianVoter
    }
}

impl<O: Clone + Ord> Adjudicator<O> for MedianVoter {
    fn name(&self) -> &str {
        "median-voter"
    }

    fn adjudication(&self) -> Adjudication {
        Adjudication::ReactiveImplicit
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<O>]) -> Verdict<O> {
        if outcomes.is_empty() {
            return Verdict::rejected(RejectionReason::NoOutcomes);
        }
        let mut ok: Vec<&O> = outcomes.iter().filter_map(VariantOutcome::output).collect();
        if ok.is_empty() {
            return Verdict::rejected(RejectionReason::AllFailed);
        }
        ok.sort();
        let median = ok[ok.len() / 2].clone();
        let support = ok.iter().filter(|&&o| *o == median).count();
        Verdict::accepted(median, support, outcomes.len() - support)
    }
}

/// Tolerance voter for floating-point outputs: nearby outputs are
/// considered to agree (inexact voting, as needed when independently
/// designed numeric versions legitimately differ in low-order bits).
///
/// # Clustering convention
///
/// Successful finite outputs are sorted (by [`f64::total_cmp`]) and
/// clustered by *chained* agreement: consecutive sorted values belong to
/// one cluster while each adjacent gap is at most `epsilon`, so a cluster
/// may span more than `epsilon` end to end. The largest cluster wins,
/// with ties broken toward the smallest values (the leftmost cluster);
/// the accepted output is the cluster's upper-middle element (index
/// `len / 2`, matching [`MedianVoter`]'s even-count convention). This
/// makes the verdict a pure function of the *multiset* of outputs —
/// permutation-invariant, unlike greedy first-appearance clustering
/// where the arrival order of representatives could split or merge
/// clusters.
///
/// Non-finite outputs (NaN, ±∞) are treated as failed votes, exactly as
/// in [`TrimmedMeanVoter`]: NaN agrees with nothing under any epsilon,
/// and two same-signed infinities would otherwise "agree" at every
/// epsilon.
#[derive(Debug, Clone, Copy)]
pub struct ToleranceVoter {
    epsilon: f64,
    threshold: usize,
}

impl ToleranceVoter {
    /// Creates a voter accepting agreement within `epsilon`, requiring a
    /// cluster of at least `threshold` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite, or `threshold == 0`.
    #[must_use]
    pub fn new(epsilon: f64, threshold: usize) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative"
        );
        assert!(threshold > 0, "threshold must be at least 1");
        Self { epsilon, threshold }
    }
}

impl Adjudicator<f64> for ToleranceVoter {
    fn name(&self) -> &str {
        "tolerance-voter"
    }

    fn adjudication(&self) -> Adjudication {
        Adjudication::ReactiveImplicit
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<f64>]) -> Verdict<f64> {
        if outcomes.is_empty() {
            return Verdict::rejected(RejectionReason::NoOutcomes);
        }
        let mut ok: Vec<f64> = outcomes
            .iter()
            .filter_map(VariantOutcome::output)
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if ok.is_empty() {
            return Verdict::rejected(RejectionReason::AllFailed);
        }
        ok.sort_by(f64::total_cmp);
        // Largest chained window over the sorted values; `>` (not `>=`)
        // keeps the leftmost window on ties.
        let mut best_start = 0usize;
        let mut best_len = 1usize;
        let mut start = 0usize;
        for i in 1..ok.len() {
            if ok[i] - ok[i - 1] > self.epsilon {
                start = i;
            }
            let len = i - start + 1;
            if len > best_len {
                best_start = start;
                best_len = len;
            }
        }
        if best_len < self.threshold {
            return Verdict::rejected(RejectionReason::NoQuorum);
        }
        let output = ok[best_start + best_len / 2];
        Verdict::accepted(output, best_len, outcomes.len() - best_len)
    }
}

/// Trimmed-mean voter for floating-point outputs: discards the `trim`
/// largest and smallest successful outputs and averages the rest — the
/// classic inexact voter for numeric N-version systems where versions
/// legitimately differ in low-order digits but corrupt values are
/// extreme.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMeanVoter {
    trim: usize,
}

impl TrimmedMeanVoter {
    /// Creates a voter trimming `trim` outputs from each end before
    /// averaging.
    #[must_use]
    pub fn new(trim: usize) -> Self {
        Self { trim }
    }
}

impl Adjudicator<f64> for TrimmedMeanVoter {
    fn name(&self) -> &str {
        "trimmed-mean-voter"
    }

    fn adjudication(&self) -> Adjudication {
        Adjudication::ReactiveImplicit
    }

    fn adjudicate(&self, outcomes: &[VariantOutcome<f64>]) -> Verdict<f64> {
        if outcomes.is_empty() {
            return Verdict::rejected(RejectionReason::NoOutcomes);
        }
        let mut ok: Vec<f64> = outcomes
            .iter()
            .filter_map(VariantOutcome::output)
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if ok.is_empty() {
            return Verdict::rejected(RejectionReason::AllFailed);
        }
        if ok.len() <= 2 * self.trim {
            return Verdict::rejected(RejectionReason::NoQuorum);
        }
        ok.sort_by(f64::total_cmp);
        let kept = &ok[self.trim..ok.len() - self.trim];
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        Verdict::accepted(mean, kept.len(), outcomes.len() - kept.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oks<O: Clone>(values: &[O]) -> Vec<VariantOutcome<O>> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| VariantOutcome::ok(format!("v{i}"), v.clone()))
            .collect()
    }

    #[test]
    fn majority_tolerates_minority_wrong() {
        let adj = MajorityVoter::new();
        assert_eq!(adj.adjudicate(&oks(&[1, 1, 2])).into_output(), Some(1));
        assert_eq!(
            adj.adjudicate(&oks(&[3, 1, 3, 2, 3])).into_output(),
            Some(3)
        );
    }

    #[test]
    fn majority_rejects_split() {
        let adj = MajorityVoter::new();
        assert_eq!(
            adj.adjudicate(&oks(&[1, 2, 3])),
            Verdict::rejected(RejectionReason::NoQuorum)
        );
    }

    #[test]
    fn majority_counts_failures_against() {
        use crate::outcome::VariantFailure;
        let adj = MajorityVoter::new();
        // 2 agree out of 5 total (2 failed, 1 dissenting): no strict majority.
        let mut outcomes = oks(&[7, 7, 8]);
        outcomes.push(VariantOutcome::failed("v3", VariantFailure::Timeout));
        outcomes.push(VariantOutcome::failed("v4", VariantFailure::Omission));
        assert_eq!(
            adj.adjudicate(&outcomes),
            Verdict::rejected(RejectionReason::NoQuorum)
        );
        // 3 agree out of 5: majority despite failures.
        let mut outcomes = oks(&[7, 7, 7]);
        outcomes.push(VariantOutcome::failed("v3", VariantFailure::Timeout));
        outcomes.push(VariantOutcome::failed("v4", VariantFailure::Omission));
        assert_eq!(adj.adjudicate(&outcomes).into_output(), Some(7));
    }

    #[test]
    fn plurality_accepts_leading_class() {
        let adj = PluralityVoter::new();
        assert_eq!(adj.adjudicate(&oks(&[5, 6, 5, 7])).into_output(), Some(5));
    }

    #[test]
    fn plurality_rejects_ties() {
        let adj = PluralityVoter::new();
        assert_eq!(
            adj.adjudicate(&oks(&[5, 6, 5, 6])),
            Verdict::rejected(RejectionReason::Disagreement)
        );
    }

    #[test]
    fn quorum_voter_threshold() {
        let adj = QuorumVoter::new(3);
        assert_eq!(adj.adjudicate(&oks(&[1, 1, 1, 2])).into_output(), Some(1));
        assert_eq!(
            adj.adjudicate(&oks(&[1, 1, 2, 2])),
            Verdict::rejected(RejectionReason::NoQuorum)
        );
    }

    #[test]
    #[should_panic(expected = "quorum must be at least 1")]
    fn zero_quorum_panics() {
        let _ = QuorumVoter::new(0);
    }

    #[test]
    fn unanimity_detects_any_divergence() {
        let adj = UnanimityVoter::new();
        assert_eq!(adj.adjudicate(&oks(&[9, 9, 9])).into_output(), Some(9));
        assert_eq!(
            adj.adjudicate(&oks(&[9, 9, 8])),
            Verdict::rejected(RejectionReason::Disagreement)
        );
    }

    #[test]
    fn unanimity_rejects_on_any_failure() {
        use crate::outcome::VariantFailure;
        let adj = UnanimityVoter::new();
        let mut outcomes = oks(&[9, 9]);
        outcomes.push(VariantOutcome::failed("v2", VariantFailure::crash("x")));
        assert!(!adj.adjudicate(&outcomes).is_accepted());
    }

    #[test]
    fn median_voter_picks_middle() {
        let adj = MedianVoter::new();
        assert_eq!(
            adj.adjudicate(&oks(&[10, 1000, 12])).into_output(),
            Some(12)
        );
    }

    #[test]
    fn median_ignores_failures() {
        use crate::outcome::VariantFailure;
        let adj = MedianVoter::new();
        let mut outcomes = oks(&[5, 6]);
        outcomes.push(VariantOutcome::failed("v2", VariantFailure::Timeout));
        // successes sorted: [5, 6]; median index 1 -> 6
        assert_eq!(adj.adjudicate(&outcomes).into_output(), Some(6));
    }

    #[test]
    fn tolerance_voter_clusters() {
        let adj = ToleranceVoter::new(0.01, 2);
        let outcomes = oks(&[1.000, 1.005, 3.2]);
        let v = adj.adjudicate(&outcomes);
        assert!(v.is_accepted());
        let out = v.into_output().unwrap();
        assert!((out - 1.0).abs() < 0.01);
    }

    #[test]
    fn tolerance_voter_rejects_scatter() {
        let adj = ToleranceVoter::new(0.01, 2);
        let outcomes = oks(&[1.0, 2.0, 3.0]);
        assert!(!adj.adjudicate(&outcomes).is_accepted());
    }

    #[test]
    fn tolerance_voter_is_order_independent() {
        // Regression: greedy first-appearance clustering split this row
        // differently depending on which value arrived first — with 1.0
        // as representative, 1.01 fell outside epsilon; with 1.005 first,
        // all three clustered. Sort-then-window sees one chained cluster
        // regardless of order.
        let adj = ToleranceVoter::new(0.007, 3);
        let a = adj.adjudicate(&oks(&[1.0, 1.005, 1.01]));
        let b = adj.adjudicate(&oks(&[1.005, 1.0, 1.01]));
        let c = adj.adjudicate(&oks(&[1.01, 1.0, 1.005]));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.into_output(), Some(1.005)); // upper-middle of the cluster
    }

    #[test]
    fn tolerance_voter_tie_prefers_smallest_cluster_values() {
        // Two clusters of two; the leftmost (smaller values) wins.
        let adj = ToleranceVoter::new(0.01, 2);
        let v = adj.adjudicate(&oks(&[5.0, 5.005, 9.0, 9.005]));
        assert_eq!(v.into_output(), Some(5.005));
    }

    #[test]
    fn tolerance_voter_treats_non_finite_as_failed() {
        use crate::outcome::VariantFailure;
        // Mirrors trimmed_mean_ignores_nan_and_failures: non-finite
        // outputs vote like crashes in both inexact voters.
        let adj = ToleranceVoter::new(0.01, 2);
        let mut outcomes = oks(&[2.0, 2.005, f64::NAN, f64::INFINITY]);
        outcomes.push(VariantOutcome::failed("v4", VariantFailure::Timeout));
        let v = adj.adjudicate(&outcomes);
        match v {
            Verdict::Accepted {
                output,
                support,
                dissent,
            } => {
                assert_eq!(output, 2.005);
                assert_eq!(support, 2);
                assert_eq!(dissent, 3); // NaN + inf + timeout all dissent
            }
            Verdict::Rejected { .. } => panic!("expected acceptance"),
        }
        // All-non-finite rows reject like all-failed rows.
        let junk = oks(&[f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(
            adj.adjudicate(&junk),
            Verdict::rejected(RejectionReason::AllFailed)
        );
    }

    #[test]
    fn tolerance_voter_incremental_adapter_agrees() {
        // ToleranceVoter keeps the default BatchIncremental front-end; the
        // streamed verdict must equal the batch one.
        let adj = ToleranceVoter::new(0.01, 2);
        let outcomes = oks(&[1.000, 1.005, 3.2]);
        let mut inc = adj.begin_incremental(outcomes.len());
        for outcome in &outcomes {
            let _ = inc.feed(outcome);
        }
        assert_eq!(inc.finish(&outcomes), adj.adjudicate(&outcomes));
    }

    #[test]
    fn median_even_count_picks_upper_middle() {
        let adj = MedianVoter::new();
        // Sorted successes [3, 5, 8, 9]: index 4/2 = 2 -> 8.
        assert_eq!(adj.adjudicate(&oks(&[9, 3, 8, 5])).into_output(), Some(8));
    }

    #[test]
    fn median_dissent_lumps_failures_with_disagreement() {
        use crate::outcome::VariantFailure;
        // Verdict::dissent is documented as "contradicting the output
        // (including detectable failures)": a crashed variant and a
        // deviating variant are indistinguishable in the counts, and the
        // caller keeps the outcomes slice if it needs the split.
        let adj = MedianVoter::new();
        let mut outcomes = oks(&[7, 7, 9]);
        outcomes.push(VariantOutcome::failed("v3", VariantFailure::crash("x")));
        match adj.adjudicate(&outcomes) {
            Verdict::Accepted {
                output,
                support,
                dissent,
            } => {
                assert_eq!(output, 7);
                assert_eq!(support, 2);
                assert_eq!(dissent, 2); // one deviating + one crashed
            }
            Verdict::Rejected { .. } => panic!("expected acceptance"),
        }
    }

    #[test]
    fn all_voters_reject_empty_and_all_failed() {
        use crate::outcome::VariantFailure;
        let empty: Vec<VariantOutcome<i32>> = vec![];
        let failed: Vec<VariantOutcome<i32>> = vec![
            VariantOutcome::failed("a", VariantFailure::Timeout),
            VariantOutcome::failed("b", VariantFailure::Omission),
        ];
        let voters: Vec<Box<dyn Adjudicator<i32>>> = vec![
            Box::new(MajorityVoter::new()),
            Box::new(PluralityVoter::new()),
            Box::new(QuorumVoter::new(1)),
            Box::new(UnanimityVoter::new()),
            Box::new(MedianVoter::new()),
        ];
        for voter in &voters {
            assert!(!voter.adjudicate(&empty).is_accepted(), "{}", voter.name());
            assert!(!voter.adjudicate(&failed).is_accepted(), "{}", voter.name());
        }
    }

    #[test]
    fn trimmed_mean_discards_outliers() {
        let adj = TrimmedMeanVoter::new(1);
        let outcomes = oks(&[10.0, 10.2, 9.8, 1e9, -1e9]);
        let v = adj.adjudicate(&outcomes).into_output().unwrap();
        assert!((v - 10.0).abs() < 0.2, "got {v}");
    }

    #[test]
    fn trimmed_mean_needs_enough_survivors() {
        let adj = TrimmedMeanVoter::new(2);
        // 4 outputs, trimming 2 from each end leaves nothing.
        assert!(!adj.adjudicate(&oks(&[1.0, 2.0, 3.0, 4.0])).is_accepted());
        assert!(adj
            .adjudicate(&oks(&[1.0, 2.0, 3.0, 4.0, 5.0]))
            .is_accepted());
    }

    #[test]
    fn trimmed_mean_ignores_nan_and_failures() {
        use crate::outcome::VariantFailure;
        let adj = TrimmedMeanVoter::new(0);
        let mut outcomes = oks(&[2.0, 4.0, f64::NAN]);
        outcomes.push(VariantOutcome::failed("v3", VariantFailure::Timeout));
        let v = adj.adjudicate(&outcomes).into_output().unwrap();
        assert!((v - 3.0).abs() < 1e-9, "got {v}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The 2k+1 rule: with k wrong results out of 2k+1, majority
            /// voting always recovers the correct output.
            #[test]
            fn majority_tolerates_k_of_2k_plus_1(k in 0usize..6, wrong in 0i64..100) {
                let n = 2 * k + 1;
                let correct = 1000i64;
                let mut values = vec![correct; n - k];
                values.extend(std::iter::repeat_n(wrong + 2000, k));
                let adj = MajorityVoter::new();
                let verdict = adj.adjudicate(&oks(&values));
                prop_assert_eq!(verdict.into_output(), Some(correct));
            }

            /// Voting is invariant under permutation of the outcomes.
            #[test]
            fn majority_is_permutation_invariant(values in proptest::collection::vec(0i64..4, 1..9), seed in 0u64..1000) {
                let adj = MajorityVoter::new();
                let original = adj.adjudicate(&oks(&values)).into_output();
                let mut shuffled = values.clone();
                let mut rng = crate::rng::SplitMix64::new(seed);
                rng.shuffle(&mut shuffled);
                let permuted = adj.adjudicate(&oks(&shuffled)).into_output();
                prop_assert_eq!(original, permuted);
            }

            /// An accepted majority output always has support > n/2.
            #[test]
            fn majority_support_exceeds_half(values in proptest::collection::vec(0i64..4, 1..9)) {
                let adj = MajorityVoter::new();
                if let Verdict::Accepted { support, dissent, .. } = adj.adjudicate(&oks(&values)) {
                    prop_assert!(support > (support + dissent) / 2);
                    prop_assert_eq!(support + dissent, values.len());
                }
            }

            /// The tolerance voter's verdict depends only on the multiset
            /// of outputs, never on arrival order (the bug the
            /// sort-then-window clustering fixed).
            #[test]
            fn tolerance_is_permutation_invariant(
                values in proptest::collection::vec(0u8..40, 1..9),
                seed in 0u64..1000,
                epsilon_steps in 0u8..4,
            ) {
                // Values on a coarse grid (steps of 0.05) with epsilon on
                // the same grid, so clusters form and split often.
                let to_f = |v: &u8| f64::from(*v) * 0.05;
                let values: Vec<f64> = values.iter().map(to_f).collect();
                let epsilon = f64::from(epsilon_steps) * 0.05 + 0.001;
                let adj = ToleranceVoter::new(epsilon, 2);
                let original = adj.adjudicate(&oks(&values));
                let mut shuffled = values.clone();
                let mut rng = crate::rng::SplitMix64::new(seed);
                rng.shuffle(&mut shuffled);
                let permuted = adj.adjudicate(&oks(&shuffled));
                prop_assert_eq!(original, permuted);
            }

            /// The median voter's output is always one of the successful
            /// outputs and at least as many values are <= it as >= it.
            #[test]
            fn median_is_a_real_output(values in proptest::collection::vec(-1000i64..1000, 1..15)) {
                let adj = MedianVoter::new();
                let out = adj.adjudicate(&oks(&values)).into_output().unwrap();
                prop_assert!(values.contains(&out));
                let le = values.iter().filter(|&&v| v <= out).count();
                let ge = values.iter().filter(|&&v| v >= out).count();
                prop_assert!(le * 2 >= values.len());
                prop_assert!(ge * 2 >= values.len());
            }
        }
    }
}
