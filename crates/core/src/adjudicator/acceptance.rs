//! Explicit adjudicators: acceptance tests.
//!
//! Recovery blocks (Randell) and one flavor of self-checking components
//! (Laprie et al.) rely on *explicitly designed* checks that judge a single
//! result against the input that produced it. An [`AcceptanceTest`] is such
//! a check; combinators allow composing partial checks. Imperfect test
//! *coverage* — the practical limit of explicit adjudication — is modeled
//! in experiments by tests that recognize corruption only on a fraction of
//! the input space (experiment E6 sweeps it).

use std::marker::PhantomData;

/// An application-specific check of one candidate output.
pub trait AcceptanceTest<I: ?Sized, O: ?Sized>: Send + Sync {
    /// Identifies the test in reports.
    fn name(&self) -> &str {
        "acceptance-test"
    }

    /// Returns `true` when `output` is acceptable for `input`.
    fn accept(&self, input: &I, output: &O) -> bool;
}

/// An [`AcceptanceTest`] built from a closure.
///
/// # Examples
///
/// ```
/// use redundancy_core::adjudicator::acceptance::{AcceptanceTest, FnAcceptance};
///
/// let sorted = FnAcceptance::new("is-sorted", |_input: &Vec<i32>, out: &Vec<i32>| {
///     out.windows(2).all(|w| w[0] <= w[1])
/// });
/// assert!(sorted.accept(&vec![3, 1], &vec![1, 3]));
/// assert!(!sorted.accept(&vec![3, 1], &vec![3, 1]));
/// ```
pub struct FnAcceptance<F> {
    name: String,
    f: F,
}

impl<F> FnAcceptance<F> {
    /// Wraps a closure as an acceptance test.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<I, O, F> AcceptanceTest<I, O> for FnAcceptance<F>
where
    F: Fn(&I, &O) -> bool + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn accept(&self, input: &I, output: &O) -> bool {
        (self.f)(input, output)
    }
}

impl<I, O> AcceptanceTest<I, O> for Box<dyn AcceptanceTest<I, O>> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn accept(&self, input: &I, output: &O) -> bool {
        self.as_ref().accept(input, output)
    }
}

/// Accepts everything. The degenerate test of pure fail-over mechanisms
/// that only react to detectable failures.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptAll;

impl<I, O> AcceptanceTest<I, O> for AcceptAll {
    fn name(&self) -> &str {
        "accept-all"
    }

    fn accept(&self, _input: &I, _output: &O) -> bool {
        true
    }
}

/// Conjunction of two acceptance tests.
pub struct AndTest<A, B, I: ?Sized, O: ?Sized> {
    a: A,
    b: B,
    name: String,
    _marker: PhantomData<fn(&I, &O)>,
}

impl<A, B, I, O> AndTest<A, B, I, O>
where
    A: AcceptanceTest<I, O>,
    B: AcceptanceTest<I, O>,
    I: ?Sized,
    O: ?Sized,
{
    /// Combines two tests; the result accepts only if both accept.
    pub fn new(a: A, b: B) -> Self {
        let name = format!("({} and {})", a.name(), b.name());
        Self {
            a,
            b,
            name,
            _marker: PhantomData,
        }
    }
}

impl<A, B, I, O> AcceptanceTest<I, O> for AndTest<A, B, I, O>
where
    A: AcceptanceTest<I, O>,
    B: AcceptanceTest<I, O>,
    I: ?Sized,
    O: ?Sized,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn accept(&self, input: &I, output: &O) -> bool {
        self.a.accept(input, output) && self.b.accept(input, output)
    }
}

/// Disjunction of two acceptance tests.
pub struct OrTest<A, B, I: ?Sized, O: ?Sized> {
    a: A,
    b: B,
    name: String,
    _marker: PhantomData<fn(&I, &O)>,
}

impl<A, B, I, O> OrTest<A, B, I, O>
where
    A: AcceptanceTest<I, O>,
    B: AcceptanceTest<I, O>,
    I: ?Sized,
    O: ?Sized,
{
    /// Combines two tests; the result accepts if either accepts.
    pub fn new(a: A, b: B) -> Self {
        let name = format!("({} or {})", a.name(), b.name());
        Self {
            a,
            b,
            name,
            _marker: PhantomData,
        }
    }
}

impl<A, B, I, O> AcceptanceTest<I, O> for OrTest<A, B, I, O>
where
    A: AcceptanceTest<I, O>,
    B: AcceptanceTest<I, O>,
    I: ?Sized,
    O: ?Sized,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn accept(&self, input: &I, output: &O) -> bool {
        self.a.accept(input, output) || self.b.accept(input, output)
    }
}

/// A golden-model oracle: accepts iff the output equals a reference
/// implementation's output. Perfect (100% coverage) acceptance testing —
/// the upper bound against which degraded tests are compared in E6.
pub struct OracleTest<F> {
    reference: F,
}

impl<F> OracleTest<F> {
    /// Creates an oracle from a reference implementation.
    pub fn new(reference: F) -> Self {
        Self { reference }
    }
}

impl<I, O, F> AcceptanceTest<I, O> for OracleTest<F>
where
    O: PartialEq,
    F: Fn(&I) -> O + Send + Sync,
{
    fn name(&self) -> &str {
        "oracle"
    }

    fn accept(&self, input: &I, output: &O) -> bool {
        (self.reference)(input) == *output
    }
}

/// Boxed trait-object alias used by patterns and techniques.
pub type BoxedAcceptance<I, O> = Box<dyn AcceptanceTest<I, O>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn in_range() -> FnAcceptance<impl Fn(&i32, &i32) -> bool> {
        FnAcceptance::new("in-range", |_: &i32, out: &i32| (0..100).contains(out))
    }

    fn even() -> FnAcceptance<impl Fn(&i32, &i32) -> bool> {
        FnAcceptance::new("even", |_: &i32, out: &i32| out % 2 == 0)
    }

    #[test]
    fn fn_acceptance_works() {
        let t = in_range();
        assert!(t.accept(&0, &50));
        assert!(!t.accept(&0, &150));
        assert_eq!(t.name(), "in-range");
    }

    #[test]
    fn accept_all_accepts() {
        let t = AcceptAll;
        assert!(AcceptanceTest::<i32, i32>::accept(&t, &1, &2));
    }

    #[test]
    fn and_requires_both() {
        let t = AndTest::new(in_range(), even());
        assert!(t.accept(&0, &42));
        assert!(!t.accept(&0, &43)); // odd
        assert!(!t.accept(&0, &142)); // out of range
        assert_eq!(t.name(), "(in-range and even)");
    }

    #[test]
    fn or_requires_either() {
        let t = OrTest::new(in_range(), even());
        assert!(t.accept(&0, &43)); // in range, odd
        assert!(t.accept(&0, &142)); // out of range, even
        assert!(!t.accept(&0, &143)); // neither
    }

    #[test]
    fn oracle_matches_reference() {
        let t = OracleTest::new(|x: &i32| x * 2);
        assert!(t.accept(&21, &42));
        assert!(!t.accept(&21, &41));
    }

    #[test]
    fn boxed_test_delegates() {
        let t: BoxedAcceptance<i32, i32> = Box::new(even());
        assert!(t.accept(&0, &2));
        assert_eq!(t.name(), "even");
    }
}
