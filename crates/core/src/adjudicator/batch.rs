//! Branchless batch adjudication: vote like hardware TMR.
//!
//! The voters in [`voting`](crate::adjudicator::voting) decide one
//! `&[VariantOutcome]` at a time through enum matching, cloning and a
//! greedy agreement-class scan. That is the right interface for a single
//! pattern run, but a Monte-Carlo campaign adjudicates the *same shaped*
//! row millions of times — and hardware TMR voters decide in a single
//! cycle. This module provides the campaign back-end:
//!
//! - [`VoteRule`] names the four exact-equality voting rules
//!   (majority / plurality / quorum / unanimity) so engines can route
//!   them without knowing the concrete voter type;
//! - [`vote_row`] is a zero-alloc row kernel, observably identical to the
//!   historical voters (same winner, same tie behavior, same rejection
//!   precedence) — pattern engines reach it through
//!   [`Adjudicator::adjudicate_batch_row`] for every Exhaustive run;
//! - [`OutcomeColumns`] is the SoA chunk layout: equal outputs are
//!   interned once per chunk, outcomes become `u32` class IDs plus a
//!   per-row success bitset, and [`OutcomeColumns::adjudicate_into`]
//!   computes whole chunks of verdicts branchlessly with per-slot
//!   agreement bitmasks and popcounts.
//!
//! `std::simd` is not used: it is still unstable on the toolchain this
//! workspace pins, and the scalar u64 bitmask kernels already decide a
//! majority-of-3 row in a few nanoseconds (see the
//! `adjudicate_throughput` bench family).
//!
//! The inexact voters (median, tolerance, trimmed mean) never route here:
//! their agreement relations are not plain equality, so they keep their
//! scalar paths and return `None` from
//! [`Adjudicator::vote_rule`].
//!
//! [`Adjudicator::vote_rule`]: crate::adjudicator::Adjudicator::vote_rule
//! [`Adjudicator::adjudicate_batch_row`]:
//!     crate::adjudicator::Adjudicator::adjudicate_batch_row

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::outcome::{RejectionReason, VariantOutcome, Verdict};

/// Maximum number of variants per row the SoA kernels handle: one slot
/// per bit of the `u64` success bitset.
pub const MAX_ARITY: usize = 64;

/// The four exact-equality voting rules, detached from their voter types
/// so batch kernels can compute any of them over packed columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoteRule {
    /// Strict majority: more than half of *all* outcomes agree.
    Majority,
    /// Leading agreement class wins; ties are rejected.
    Plurality,
    /// At least this many outcomes agree.
    Quorum(usize),
    /// Every outcome succeeded and all outputs agree.
    Unanimity,
}

impl VoteRule {
    /// The agreement count an output needs under this rule when `arity`
    /// outcomes vote.
    #[must_use]
    pub fn threshold(self, arity: usize) -> usize {
        match self {
            VoteRule::Majority => arity / 2 + 1,
            VoteRule::Plurality => 1,
            VoteRule::Quorum(quorum) => quorum,
            VoteRule::Unanimity => arity.max(1),
        }
    }

    /// Whether a tie between leading agreement classes rejects the vote.
    #[must_use]
    pub fn tie_rejects(self) -> bool {
        matches!(self, VoteRule::Plurality)
    }
}

const STATE_UNSET: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

/// Process-global batch-path switch, resolved lazily from the
/// `REDUNDANCY_BATCH_ADJ` environment variable (default: on).
static BATCH_STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Whether the batch adjudication path is engaged.
///
/// Defaults to on; set `REDUNDANCY_BATCH_ADJ=0` (or `false`/`off`/`no`)
/// to fall back to the scalar voters everywhere, or flip it at runtime
/// with [`set_enabled`]. The verdicts are bit-identical either way
/// (pinned by the `batch_equivalence` proptests and the campaign
/// invariance tests); the switch exists for benchmarking and bisecting.
#[must_use]
pub fn enabled() -> bool {
    match BATCH_STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = !matches!(
                std::env::var("REDUNDANCY_BATCH_ADJ").as_deref(),
                Ok("0") | Ok("false") | Ok("off") | Ok("no")
            );
            BATCH_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the batch path on or off for this process (overrides the
/// environment). Intended for benchmarks and A/B tests.
pub fn set_enabled(on: bool) {
    BATCH_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Zero-alloc row kernel: computes `rule` over one outcome row with the
/// given output equality, using stack buffers for every arity up to
/// [`MAX_ARITY`] (larger rows spill to one heap buffer).
///
/// Observably identical to the historical voters:
/// - agreement classes form in first-appearance order, represented by
///   their first member;
/// - on support ties the *last* leading class wins (the `max_by_key`
///   behavior the voters inherited), except under plurality where ties
///   reject;
/// - rejection precedence is `NoOutcomes` → `AllFailed` → `NoQuorum` →
///   `Disagreement`, and `dissent = len - support` counts detectable
///   failures as dissent.
pub fn vote_row<O, E>(rule: VoteRule, eq: E, outcomes: &[VariantOutcome<O>]) -> Verdict<O>
where
    O: Clone,
    E: Fn(&O, &O) -> bool,
{
    let n = outcomes.len();
    if n == 0 {
        return Verdict::rejected(RejectionReason::NoOutcomes);
    }
    if matches!(rule, VoteRule::Unanimity) {
        // Unanimity short-circuits on any failure (historically labelled
        // `AllFailed`) before comparing outputs.
        if outcomes.iter().any(|o| !o.is_ok()) {
            return Verdict::rejected(RejectionReason::AllFailed);
        }
        let first = outcomes[0].output().expect("checked success");
        return if outcomes
            .iter()
            .skip(1)
            .all(|o| eq(o.output().expect("checked success"), first))
        {
            Verdict::accepted(first.clone(), n, 0)
        } else {
            Verdict::rejected(RejectionReason::Disagreement)
        };
    }
    // (representative slot, count) per agreement class, in
    // first-appearance order.
    let mut stack_buf = [(0u32, 0u32); MAX_ARITY];
    let mut heap_buf: Vec<(u32, u32)>;
    let classes: &mut [(u32, u32)] = if n <= MAX_ARITY {
        &mut stack_buf
    } else {
        heap_buf = vec![(0, 0); n];
        &mut heap_buf
    };
    let mut n_classes = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        let Ok(output) = &outcome.result else {
            continue;
        };
        let mut matched = false;
        for (rep, count) in classes[..n_classes].iter_mut() {
            let rep_output = outcomes[*rep as usize]
                .output()
                .expect("representatives are successful outcomes");
            if eq(rep_output, output) {
                *count += 1;
                matched = true;
                break;
            }
        }
        if !matched {
            classes[n_classes] = (i as u32, 1);
            n_classes += 1;
        }
    }
    if n_classes == 0 {
        return Verdict::rejected(RejectionReason::AllFailed);
    }
    // `>=` keeps the later class on ties: first-appearance order makes
    // this exactly `max_by_key`'s last-maximum pick.
    let mut best = 0usize;
    let mut best_count = 0u32;
    for (c, &(_, count)) in classes[..n_classes].iter().enumerate() {
        if count >= best_count {
            best = c;
            best_count = count;
        }
    }
    if (best_count as usize) < rule.threshold(n) {
        return Verdict::rejected(RejectionReason::NoQuorum);
    }
    if rule.tie_rejects()
        && classes[..n_classes]
            .iter()
            .filter(|&&(_, c)| c == best_count)
            .count()
            > 1
    {
        return Verdict::rejected(RejectionReason::Disagreement);
    }
    let (rep, _) = classes[best];
    let output = outcomes[rep as usize]
        .output()
        .expect("representative is successful")
        .clone();
    Verdict::accepted(output, best_count as usize, n - best_count as usize)
}

/// Class ID marking a failed slot in [`OutcomeColumns`]. Never collides
/// with a real ID (the interner refuses to grow that far) and never
/// reaches the kernels, which mask failed slots through the success
/// bitset.
const FAILED_SLOT: u32 = u32::MAX;

/// Campaign outcomes in structure-of-arrays layout: one `u32` class ID
/// per slot (equal outputs intern to equal IDs) and one success bitset
/// per row.
///
/// Packing is the only part that touches `O`; adjudication over the
/// packed columns is pure integer work — pairwise ID-equality bitmasks,
/// popcounts for support, a branch-free winner scan — and allocates
/// nothing when driven through [`adjudicate_into`] with a reused output
/// vector. Rows share one interner, so a chunk of trials whose variants
/// mostly agree stores each distinct output once.
///
/// [`adjudicate_into`]: OutcomeColumns::adjudicate_into
#[derive(Debug, Clone)]
pub struct OutcomeColumns<O> {
    arity: usize,
    class: Vec<u32>,
    ok: Vec<u64>,
    values: Vec<O>,
    intern: HashMap<O, u32>,
}

impl<O: Clone + Eq + Hash> OutcomeColumns<O> {
    /// Creates empty columns for rows of `arity` outcomes each.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= arity <= MAX_ARITY`.
    #[must_use]
    pub fn new(arity: usize) -> Self {
        assert!(
            (1..=MAX_ARITY).contains(&arity),
            "arity must be in 1..={MAX_ARITY}, got {arity}"
        );
        Self {
            arity,
            class: Vec::new(),
            ok: Vec::new(),
            values: Vec::new(),
            intern: HashMap::new(),
        }
    }

    /// Creates columns with capacity for `rows` rows.
    #[must_use]
    pub fn with_row_capacity(arity: usize, rows: usize) -> Self {
        let mut cols = Self::new(arity);
        cols.class.reserve(rows * arity);
        cols.ok.reserve(rows);
        cols
    }

    /// Outcomes per row.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Rows packed so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.ok.len()
    }

    /// Whether no rows are packed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ok.is_empty()
    }

    /// Distinct output values interned so far.
    #[must_use]
    pub fn distinct_values(&self) -> usize {
        self.values.len()
    }

    /// The interned output for a class ID (as returned in
    /// [`RowDecision::Accepted`]).
    ///
    /// # Panics
    ///
    /// Panics if `class` was not produced by this chunk's interner.
    #[must_use]
    pub fn value(&self, class: u32) -> &O {
        &self.values[class as usize]
    }

    /// Drops all rows and interned values, keeping allocations for the
    /// next chunk.
    pub fn clear(&mut self) {
        self.class.clear();
        self.ok.clear();
        self.values.clear();
        self.intern.clear();
    }

    fn intern(&mut self, value: &O) -> u32 {
        if let Some(&id) = self.intern.get(value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("interner fits u32");
        assert!(id != FAILED_SLOT, "interner overflow");
        self.values.push(value.clone());
        self.intern.insert(value.clone(), id);
        id
    }

    /// Packs one row of per-slot results (`None` = detectable failure).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.arity()`.
    pub fn push_row(&mut self, row: &[Option<O>]) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        let mut ok = 0u64;
        for (slot, value) in row.iter().enumerate() {
            let id = match value {
                Some(v) => {
                    ok |= 1u64 << slot;
                    self.intern(v)
                }
                None => FAILED_SLOT,
            };
            self.class.push(id);
        }
        self.ok.push(ok);
    }

    /// Packs one row from variant outcomes (failures become failed
    /// slots).
    ///
    /// # Panics
    ///
    /// Panics if `outcomes.len() != self.arity()`.
    pub fn push_outcomes(&mut self, outcomes: &[VariantOutcome<O>]) {
        assert_eq!(outcomes.len(), self.arity, "row arity mismatch");
        let mut ok = 0u64;
        for (slot, outcome) in outcomes.iter().enumerate() {
            let id = match outcome.output() {
                Some(v) => {
                    ok |= 1u64 << slot;
                    self.intern(v)
                }
                None => FAILED_SLOT,
            };
            self.class.push(id);
        }
        self.ok.push(ok);
    }

    /// Adjudicates every packed row under `rule` into `out` (cleared
    /// first, reallocation-free once warm).
    ///
    /// Each row costs `arity²` ID compares folded into u64 bitmasks plus
    /// one popcount per slot — no branching on outcome data, no clones,
    /// no allocation.
    pub fn adjudicate_into(&self, rule: VoteRule, out: &mut Vec<RowVerdict>) {
        out.clear();
        out.reserve(self.rows());
        let n = self.arity;
        let full = u64::MAX >> (64 - n);
        let threshold = u32::try_from(rule.threshold(n).min(MAX_ARITY + 1)).expect("small");
        let tie_rejects = rule.tie_rejects();
        let unanimous = matches!(rule, VoteRule::Unanimity);
        for row in 0..self.rows() {
            let ids = &self.class[row * n..(row + 1) * n];
            let ok = self.ok[row];
            out.push(if unanimous {
                unanimity_row(ids, ok, full)
            } else {
                threshold_row(ids, ok, threshold, tie_rejects)
            });
        }
    }

    /// Convenience wrapper over [`adjudicate_into`] that allocates the
    /// output vector.
    ///
    /// [`adjudicate_into`]: OutcomeColumns::adjudicate_into
    #[must_use]
    pub fn adjudicate(&self, rule: VoteRule) -> Vec<RowVerdict> {
        let mut out = Vec::new();
        self.adjudicate_into(rule, &mut out);
        out
    }
}

/// One row's verdict in compact columnar form: no output clone — an
/// accepted row carries the interned class ID instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowVerdict {
    /// How the row decided.
    pub decision: RowDecision,
    /// Outcomes supporting the winning class (0 when rejected).
    pub support: u32,
    /// Outcomes dissenting or failed (the full row when rejected).
    pub dissent: u32,
}

/// The decision half of a [`RowVerdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowDecision {
    /// An output was accepted.
    Accepted {
        /// Interned class ID of the winning output (resolve with
        /// [`OutcomeColumns::value`]).
        class: u32,
        /// First row slot holding the winning output.
        rep_slot: u32,
    },
    /// No output was accepted.
    Rejected(RejectionReason),
}

impl RowVerdict {
    fn rejected(reason: RejectionReason, arity: u32) -> Self {
        Self {
            decision: RowDecision::Rejected(reason),
            support: 0,
            dissent: arity,
        }
    }

    /// Whether an output was accepted.
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        matches!(self.decision, RowDecision::Accepted { .. })
    }

    /// Expands to a full [`Verdict`], cloning the winning output from the
    /// chunk's interner.
    #[must_use]
    pub fn to_verdict<O: Clone + Eq + Hash>(&self, columns: &OutcomeColumns<O>) -> Verdict<O> {
        match self.decision {
            RowDecision::Accepted { class, .. } => Verdict::accepted(
                columns.value(class).clone(),
                self.support as usize,
                self.dissent as usize,
            ),
            RowDecision::Rejected(reason) => Verdict::rejected(reason),
        }
    }
}

/// Majority/plurality/quorum over one packed row. Branch-free over the
/// outcome data: per-slot agreement masks, popcount support, and a
/// conditional-move winner scan whose `>=` reproduces the scalar voters'
/// last-maximum tie pick.
#[inline]
fn threshold_row(ids: &[u32], ok: u64, threshold: u32, tie_rejects: bool) -> RowVerdict {
    let n = ids.len();
    let arity = n as u32;
    if ok == 0 {
        return RowVerdict::rejected(RejectionReason::AllFailed, arity);
    }
    // supports[i] = class support if successful slot i is the first slot
    // of its agreement class, else 0.
    let mut supports = [0u32; MAX_ARITY];
    for (i, &id) in ids.iter().enumerate() {
        let mut mask = 0u64;
        for (j, &other) in ids.iter().enumerate() {
            mask |= u64::from(id == other) << j;
        }
        mask &= ok;
        let succeeded = (ok >> i) & 1;
        let is_rep = succeeded & u64::from(mask & ((1u64 << i) - 1) == 0);
        supports[i] = mask.count_ones() * (is_rep as u32);
    }
    // Representative slots ascend in class first-appearance order, so a
    // `>=` scan lands on the last leading class — the `max_by_key` pick.
    let mut rep_slot = 0usize;
    let mut best = 0u32;
    for (i, &support) in supports[..n].iter().enumerate() {
        let take = support != 0 && support >= best;
        best = if take { support } else { best };
        rep_slot = if take { i } else { rep_slot };
    }
    if best < threshold {
        return RowVerdict::rejected(RejectionReason::NoQuorum, arity);
    }
    if tie_rejects && supports[..n].iter().filter(|&&s| s == best).count() > 1 {
        return RowVerdict::rejected(RejectionReason::Disagreement, arity);
    }
    RowVerdict {
        decision: RowDecision::Accepted {
            class: ids[rep_slot],
            rep_slot: rep_slot as u32,
        },
        support: best,
        dissent: arity - best,
    }
}

/// Unanimity over one packed row: full success bitset, all IDs equal.
#[inline]
fn unanimity_row(ids: &[u32], ok: u64, full: u64) -> RowVerdict {
    let arity = ids.len() as u32;
    if ok != full {
        return RowVerdict::rejected(RejectionReason::AllFailed, arity);
    }
    let first = ids[0];
    let mut diverged = 0u32;
    for &id in ids {
        diverged |= u32::from(id != first);
    }
    if diverged != 0 {
        return RowVerdict::rejected(RejectionReason::Disagreement, arity);
    }
    RowVerdict {
        decision: RowDecision::Accepted {
            class: first,
            rep_slot: 0,
        },
        support: arity,
        dissent: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjudicator::voting::{MajorityVoter, PluralityVoter, QuorumVoter, UnanimityVoter};
    use crate::adjudicator::Adjudicator;
    use crate::outcome::VariantFailure;

    fn oks<O: Clone>(values: &[O]) -> Vec<VariantOutcome<O>> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| VariantOutcome::ok(format!("v{i}"), v.clone()))
            .collect()
    }

    #[test]
    fn rule_thresholds_match_voters() {
        assert_eq!(VoteRule::Majority.threshold(3), 2);
        assert_eq!(VoteRule::Majority.threshold(4), 3);
        assert_eq!(VoteRule::Plurality.threshold(9), 1);
        assert_eq!(VoteRule::Quorum(2).threshold(5), 2);
        assert_eq!(VoteRule::Unanimity.threshold(3), 3);
        assert!(VoteRule::Plurality.tie_rejects());
        assert!(!VoteRule::Majority.tie_rejects());
    }

    #[test]
    fn vote_row_matches_scalar_voters_on_fixed_rows() {
        let rows: Vec<Vec<VariantOutcome<i64>>> = vec![
            oks(&[1, 1, 2]),
            oks(&[1, 2, 3]),
            oks(&[5, 6, 5, 6]),
            oks(&[3, 1, 3, 2, 3]),
            oks(&[7]),
            vec![],
            vec![
                VariantOutcome::failed("a", VariantFailure::Timeout),
                VariantOutcome::failed("b", VariantFailure::Omission),
            ],
            {
                let mut o = oks(&[7, 7, 8]);
                o.push(VariantOutcome::failed("v3", VariantFailure::Timeout));
                o
            },
        ];
        for outcomes in &rows {
            assert_eq!(
                vote_row(VoteRule::Majority, |a, b| a == b, outcomes),
                MajorityVoter::new().adjudicate(outcomes),
            );
            assert_eq!(
                vote_row(VoteRule::Plurality, |a, b| a == b, outcomes),
                PluralityVoter::new().adjudicate(outcomes),
            );
            assert_eq!(
                vote_row(VoteRule::Quorum(2), |a, b| a == b, outcomes),
                QuorumVoter::new(2).adjudicate(outcomes),
            );
            assert_eq!(
                vote_row(VoteRule::Unanimity, |a, b| a == b, outcomes),
                UnanimityVoter::new().adjudicate(outcomes),
            );
        }
    }

    #[test]
    fn vote_row_handles_rows_wider_than_the_bitset() {
        let values: Vec<i64> = (0..100).map(|i| i % 3).collect();
        let outcomes = oks(&values);
        assert_eq!(
            vote_row(VoteRule::Plurality, |a, b| a == b, &outcomes),
            PluralityVoter::new().adjudicate(&outcomes),
        );
    }

    #[test]
    fn columns_intern_equal_outputs_once() {
        let mut cols: OutcomeColumns<i64> = OutcomeColumns::new(3);
        cols.push_row(&[Some(4), Some(4), Some(9)]);
        cols.push_row(&[Some(9), None, Some(4)]);
        assert_eq!(cols.rows(), 2);
        assert_eq!(cols.distinct_values(), 2);
        let verdicts = cols.adjudicate(VoteRule::Majority);
        assert_eq!(verdicts[0].to_verdict(&cols).into_output(), Some(4));
        assert!(!verdicts[1].is_accepted());
    }

    #[test]
    fn columns_clear_keeps_capacity_but_drops_interned_values() {
        let mut cols: OutcomeColumns<i64> = OutcomeColumns::with_row_capacity(2, 8);
        cols.push_row(&[Some(1), Some(2)]);
        cols.clear();
        assert!(cols.is_empty());
        assert_eq!(cols.distinct_values(), 0);
        cols.push_row(&[Some(3), Some(3)]);
        let verdicts = cols.adjudicate(VoteRule::Unanimity);
        assert_eq!(verdicts[0].to_verdict(&cols).into_output(), Some(3));
    }

    #[test]
    fn columns_match_scalar_voters_row_by_row() {
        // Mixed successes, failures, duplicates, all-failed rows.
        let rows: Vec<Vec<Option<i64>>> = vec![
            vec![Some(1), Some(1), Some(2)],
            vec![Some(1), Some(2), Some(3)],
            vec![None, None, None],
            vec![Some(5), None, Some(5)],
            vec![None, Some(7), None],
            vec![Some(2), Some(2), Some(2)],
        ];
        let mut cols: OutcomeColumns<i64> = OutcomeColumns::new(3);
        for row in &rows {
            cols.push_row(row);
        }
        let cases = [
            (VoteRule::Majority, MajorityVoter::new().into_boxed()),
            (VoteRule::Plurality, PluralityVoter::new().into_boxed()),
            (VoteRule::Quorum(2), QuorumVoter::new(2).into_boxed()),
            (VoteRule::Unanimity, UnanimityVoter::new().into_boxed()),
        ];
        for (rule, voter) in &cases {
            let verdicts = cols.adjudicate(*rule);
            for (row, verdict) in rows.iter().zip(&verdicts) {
                let outcomes: Vec<VariantOutcome<i64>> = row
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match v {
                        Some(v) => VariantOutcome::ok(format!("v{i}"), *v),
                        None => VariantOutcome::failed(format!("v{i}"), VariantFailure::Timeout),
                    })
                    .collect();
                assert_eq!(
                    verdict.to_verdict(&cols),
                    voter.adjudicate(&outcomes),
                    "rule {rule:?}, row {row:?}"
                );
            }
        }
    }

    #[test]
    fn enabled_toggle_round_trips() {
        let initial = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(initial);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn push_row_rejects_wrong_arity() {
        let mut cols: OutcomeColumns<i64> = OutcomeColumns::new(3);
        cols.push_row(&[Some(1)]);
    }

    #[test]
    #[should_panic(expected = "arity must be in")]
    fn zero_arity_columns_panic() {
        let _ = OutcomeColumns::<i64>::new(0);
    }

    trait IntoBoxed<O> {
        fn into_boxed(self) -> Box<dyn Adjudicator<O>>;
    }

    impl<O: 'static, A: Adjudicator<O> + 'static> IntoBoxed<O> for A {
        fn into_boxed(self) -> Box<dyn Adjudicator<O>> {
            Box::new(self)
        }
    }
}
