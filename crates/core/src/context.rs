//! Execution context threaded through every variant execution.
//!
//! [`ExecContext`] carries the deterministic random stream, the cost
//! accounting of [`crate::cost::Cost`], and an optional *fuel* budget that
//! models timeouts: a variant that runs out of fuel is reported as hung,
//! which lets the framework exercise watchdog-style detection without real
//! wall-clock waits.

use std::fmt;

use crate::cost::Cost;
use crate::rng::SplitMix64;

/// Error returned by [`ExecContext::charge`] when the fuel budget is
/// exhausted. Variants should propagate it; pattern engines convert it into
/// [`VariantFailure::Timeout`](crate::outcome::VariantFailure::Timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuelExhausted;

impl fmt::Display for FuelExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("execution fuel exhausted")
    }
}

impl std::error::Error for FuelExhausted {}

/// Per-execution context: deterministic randomness, cost metering, fuel.
///
/// # Examples
///
/// ```
/// use redundancy_core::context::ExecContext;
///
/// let mut ctx = ExecContext::new(42);
/// ctx.charge(10).unwrap();
/// assert_eq!(ctx.cost().work_units, 10);
/// let coin = ctx.rng().chance(0.5); // deterministic for seed 42
/// let _ = coin;
/// ```
#[derive(Debug, Clone)]
pub struct ExecContext {
    rng: SplitMix64,
    cost: Cost,
    fuel: Option<u64>,
    initial_fuel: Option<u64>,
    /// Count of forks taken so far; folded into every child stream so
    /// that repeated forks (e.g. one per retry, or one per request in a
    /// campaign) get fresh, still-deterministic randomness.
    forks: std::cell::Cell<u64>,
}

impl ExecContext {
    /// Creates a context with unlimited fuel.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            cost: Cost::ZERO,
            fuel: None,
            initial_fuel: None,
            forks: std::cell::Cell::new(0),
        }
    }

    /// Creates a context whose executions may consume at most `fuel` work
    /// units before being reported as hung.
    #[must_use]
    pub fn with_fuel(seed: u64, fuel: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            cost: Cost::ZERO,
            fuel: Some(fuel),
            initial_fuel: Some(fuel),
            forks: std::cell::Cell::new(0),
        }
    }

    /// The deterministic random stream of this context.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }

    /// Charges `units` of work (and the same amount of virtual time).
    ///
    /// # Errors
    ///
    /// Returns [`FuelExhausted`] when a fuel budget is configured and the
    /// charge does not fit in the remaining budget.
    pub fn charge(&mut self, units: u64) -> Result<(), FuelExhausted> {
        if let Some(fuel) = self.fuel.as_mut() {
            if *fuel < units {
                // Consume what is left: the hung execution did burn it.
                self.cost.work_units += *fuel;
                self.cost.virtual_ns += *fuel;
                *fuel = 0;
                return Err(FuelExhausted);
            }
            *fuel -= units;
        }
        self.cost.work_units += units;
        self.cost.virtual_ns += units;
        Ok(())
    }

    /// Advances virtual time without consuming work or fuel (e.g. network
    /// latency in the service substrate).
    pub fn advance_ns(&mut self, ns: u64) {
        self.cost.virtual_ns += ns;
    }

    /// Records one variant invocation with the given design cost.
    pub fn record_invocation(&mut self, design_cost: f64) {
        self.cost.invocations += 1;
        self.cost.design_cost += design_cost;
    }

    /// Cost accumulated so far.
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Remaining fuel, or `None` when unlimited.
    #[must_use]
    pub fn remaining_fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// Resets cost to zero and refills fuel to its initial budget, keeping
    /// the random stream position (a fresh attempt in the same experiment).
    pub fn reset_metering(&mut self) {
        self.cost = Cost::ZERO;
        self.fuel = self.initial_fuel;
    }

    /// Takes the accumulated cost out of the context, leaving zero.
    pub fn take_cost(&mut self) -> Cost {
        std::mem::replace(&mut self.cost, Cost::ZERO)
    }

    /// Derives an independent child context keyed by `stream`, with fresh
    /// cost metering and a full fuel budget.
    ///
    /// Each call advances an internal fork counter that is folded into the
    /// child's stream: forking in a loop (one child per retry, per variant,
    /// per request) yields fresh randomness every time, while the overall
    /// sequence stays a pure function of the seed — results do not depend
    /// on thread scheduling, only on fork order, which pattern engines fix
    /// by forking before spawning.
    #[must_use]
    pub fn fork(&self, stream: u64) -> ExecContext {
        let n = self.forks.get();
        self.forks.set(n.wrapping_add(1));
        ExecContext {
            rng: self.rng.fork(stream).fork(n),
            cost: Cost::ZERO,
            fuel: self.initial_fuel,
            initial_fuel: self.initial_fuel,
            forks: std::cell::Cell::new(0),
        }
    }

    /// Adds a cost as a *sequential* contribution (e.g. a completed child
    /// execution whose cost was metered separately).
    pub fn add_sequential_cost(&mut self, cost: Cost) {
        self.cost = self.cost.sequential(cost);
    }

    /// Adds several costs as *parallel* contributions: work and invocations
    /// sum, virtual time takes the critical path.
    pub fn add_parallel_costs<I: IntoIterator<Item = Cost>>(&mut self, costs: I) {
        let mut combined = Cost::ZERO;
        for cost in costs {
            combined = combined.parallel(cost);
        }
        self.cost = self.cost.sequential(combined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_fuel_never_exhausts() {
        let mut ctx = ExecContext::new(1);
        for _ in 0..1000 {
            ctx.charge(1_000_000).unwrap();
        }
        assert_eq!(ctx.cost().work_units, 1_000_000_000);
    }

    #[test]
    fn fuel_exhaustion_reported_and_burned() {
        let mut ctx = ExecContext::with_fuel(1, 100);
        ctx.charge(60).unwrap();
        assert_eq!(ctx.remaining_fuel(), Some(40));
        assert_eq!(ctx.charge(60), Err(FuelExhausted));
        // The hung execution consumed the remaining budget.
        assert_eq!(ctx.remaining_fuel(), Some(0));
        assert_eq!(ctx.cost().work_units, 100);
    }

    #[test]
    fn reset_metering_refills_fuel() {
        let mut ctx = ExecContext::with_fuel(1, 50);
        let _ = ctx.charge(50);
        ctx.reset_metering();
        assert_eq!(ctx.remaining_fuel(), Some(50));
        assert_eq!(ctx.cost(), Cost::ZERO);
    }

    #[test]
    fn forks_are_deterministic_but_never_repeat() {
        // Same seed, same fork sequence -> identical children.
        let ctx1 = ExecContext::new(99);
        let ctx2 = ExecContext::new(99);
        let mut a1 = ctx1.fork(1);
        let mut a2 = ctx2.fork(1);
        assert_eq!(a1.rng().next_u64(), a2.rng().next_u64());
        // Within one context, repeated forks (even on the same stream)
        // yield fresh randomness: retries must not replay the transient
        // conditions of the failed attempt.
        let mut r1 = ctx1.fork(7);
        let mut r2 = ctx1.fork(7);
        assert_ne!(r1.rng().next_u64(), r2.rng().next_u64());
        // Distinct streams at the same position differ too.
        let ctx3 = ExecContext::new(99);
        let mut b = ctx3.fork(2);
        let mut a3 = ExecContext::new(99).fork(1);
        assert_ne!(a3.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn add_parallel_costs_uses_critical_path() {
        let mut parent = ExecContext::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        c1.charge(30).unwrap();
        c2.charge(70).unwrap();
        parent.add_parallel_costs([c1.cost(), c2.cost()]);
        assert_eq!(parent.cost().virtual_ns, 70);
        assert_eq!(parent.cost().work_units, 100);
    }

    #[test]
    fn add_sequential_cost_adds() {
        let mut parent = ExecContext::new(5);
        let mut c = parent.fork(1);
        c.charge(40).unwrap();
        parent.add_sequential_cost(c.cost());
        parent.add_sequential_cost(c.cost());
        assert_eq!(parent.cost().virtual_ns, 80);
    }

    #[test]
    fn record_invocation_counts() {
        let mut ctx = ExecContext::new(0);
        ctx.record_invocation(2.5);
        ctx.record_invocation(1.5);
        assert_eq!(ctx.cost().invocations, 2);
        assert!((ctx.cost().design_cost - 4.0).abs() < 1e-9);
    }
}
