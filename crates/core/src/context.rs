//! Execution context threaded through every variant execution.
//!
//! [`ExecContext`] carries the deterministic random stream, the cost
//! accounting of [`crate::cost::Cost`], and an optional *fuel* budget that
//! models timeouts: a variant that runs out of fuel is reported as hung,
//! which lets the framework exercise watchdog-style detection without real
//! wall-clock waits.
//!
//! It also carries the optional observability handle: attach an
//! [`Observer`] with [`ExecContext::with_observer`] and every pattern
//! engine and technique running under this context emits structured
//! [`redundancy_obs`] events — spans for technique/pattern/variant
//! executions, points for verdicts, fuel exhaustion, checkpoints and the
//! rest. With no observer attached (the default) the instrumentation is a
//! single branch per site, and crucially it never touches the random
//! stream or the fork counter, so traced and untraced runs are bitwise
//! identical in behavior.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use redundancy_obs::{CostSnapshot, ObsHandle, Observer, Point, SpanKind, SpanStatus, SpanToken};

use crate::cost::Cost;
use crate::rng::SplitMix64;

/// Error returned by [`ExecContext::charge`] when the fuel budget is
/// exhausted. Variants should propagate it; pattern engines convert it into
/// [`VariantFailure::Timeout`](crate::outcome::VariantFailure::Timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuelExhausted;

impl fmt::Display for FuelExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("execution fuel exhausted")
    }
}

impl std::error::Error for FuelExhausted {}

/// A shared flag pattern engines raise once their verdict is fixed, so
/// still-running variants can stop cooperatively. Checked (one relaxed
/// atomic load) on every [`ExecContext::charge`] of a context that carries
/// one; contexts without a token (the default) pay nothing.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Optional charge-check fuse (see [`CancelToken::cancel_after`]):
    /// each [`is_cancelled`](CancelToken::is_cancelled) check consumes
    /// one unit, and the token fires itself when the budget is spent.
    fuse: Option<Arc<AtomicU64>>,
}

impl CancelToken {
    /// Creates an un-fired token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a token that fires itself on the `checks`-th
    /// [`is_cancelled`](CancelToken::is_cancelled) check (`checks` is
    /// clamped to at least 1). Since contexts check once per
    /// [`ExecContext::charge`], this cancels an execution at a
    /// deterministic charge point — the simulator's chaos harness uses
    /// it to inject cancellation mid-trial without patching call sites.
    #[must_use]
    pub fn cancel_after(checks: u64) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            fuse: Some(Arc::new(AtomicU64::new(checks.max(1)))),
        }
    }

    /// Fires the token: every context carrying it starts failing
    /// [`ExecContext::charge`] calls.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired. With a
    /// [`cancel_after`](CancelToken::cancel_after) fuse, each call
    /// consumes one unit of the budget and the last unit fires the
    /// token.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(fuse) = &self.fuse {
            match fuse.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1)) {
                // This check consumed the last unit, or the budget was
                // already spent: the fuse has blown.
                Ok(1) | Err(_) => {
                    self.flag.store(true, Ordering::Release);
                    return true;
                }
                Ok(_) => {}
            }
        }
        false
    }
}

/// Per-execution context: deterministic randomness, cost metering, fuel.
///
/// # Examples
///
/// ```
/// use redundancy_core::context::ExecContext;
///
/// let mut ctx = ExecContext::new(42);
/// ctx.charge(10).unwrap();
/// assert_eq!(ctx.cost().work_units, 10);
/// let coin = ctx.rng().chance(0.5); // deterministic for seed 42
/// let _ = coin;
/// ```
#[derive(Debug, Clone)]
pub struct ExecContext {
    rng: SplitMix64,
    cost: Cost,
    fuel: Option<u64>,
    initial_fuel: Option<u64>,
    /// Count of forks taken so far; folded into every child stream so
    /// that repeated forks (e.g. one per retry, or one per request in a
    /// campaign) get fresh, still-deterministic randomness.
    forks: std::cell::Cell<u64>,
    /// Observability handle; `None` (the default) means untraced.
    obs: Option<ObsHandle>,
    /// Cancellation token; `None` (the default) means uncancellable.
    /// Inherited by forks so nested pattern runs stop too.
    cancel: Option<CancelToken>,
    /// Set when a [`charge`](Self::charge) failed because the token fired
    /// (rather than because fuel ran out), so `run_contained` can report
    /// the resulting failure as `Cancelled` instead of `Timeout`.
    cancelled: bool,
}

impl ExecContext {
    /// Creates a context with unlimited fuel.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            cost: Cost::ZERO,
            fuel: None,
            initial_fuel: None,
            forks: std::cell::Cell::new(0),
            obs: None,
            cancel: None,
            cancelled: false,
        }
    }

    /// Creates a context whose executions may consume at most `fuel` work
    /// units before being reported as hung.
    #[must_use]
    pub fn with_fuel(seed: u64, fuel: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            cost: Cost::ZERO,
            fuel: Some(fuel),
            initial_fuel: Some(fuel),
            forks: std::cell::Cell::new(0),
            obs: None,
            cancel: None,
            cancelled: false,
        }
    }

    /// Attaches a cancellation token: once it fires, every
    /// [`charge`](Self::charge) on this context (and its forks) fails, so
    /// a cooperative variant winds down at its next metering point.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether a fired cancellation token interrupted this context (as
    /// opposed to genuine fuel exhaustion).
    #[must_use]
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Attaches an observer: every pattern engine and technique running
    /// under this context (and its forks) will emit structured events.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.obs = Some(ObsHandle::new(observer));
        self
    }

    /// Attaches an already-built handle (shares its span-id allocator,
    /// e.g. to parent new work under an existing span).
    #[must_use]
    pub fn with_obs_handle(mut self, handle: ObsHandle) -> Self {
        self.obs = Some(handle);
        self
    }

    /// Whether an enabled observer is attached. Instrumentation uses this
    /// to skip building event payloads.
    #[must_use]
    pub fn observed(&self) -> bool {
        self.obs.as_ref().is_some_and(ObsHandle::enabled)
    }

    /// The attached observability handle, if any.
    #[must_use]
    pub fn obs_handle(&self) -> Option<&ObsHandle> {
        self.obs.as_ref()
    }

    /// Opens an observability span at the current virtual time. Returns
    /// `None` (for free) when untraced; the kind closure only runs when
    /// traced.
    pub fn obs_begin(&mut self, kind: impl FnOnce() -> SpanKind) -> Option<SpanToken> {
        let clock = self.cost.virtual_ns;
        self.obs
            .as_mut()
            .filter(|h| h.enabled())
            .map(|h| h.begin_span(clock, kind))
    }

    /// Closes a span opened by [`obs_begin`](Self::obs_begin), attributing
    /// `cost` (typically a [`Cost::delta_since`] of the span's start).
    pub fn obs_end(&mut self, token: Option<SpanToken>, status: SpanStatus, cost: CostSnapshot) {
        if let (Some(token), Some(h)) = (token, self.obs.as_mut()) {
            let clock = self.cost.virtual_ns;
            h.end_span(token, clock, status, cost);
        }
    }

    /// Emits a point event at the current virtual time; the closure only
    /// runs when traced.
    pub fn obs_emit(&mut self, point: impl FnOnce() -> Point) {
        if let Some(h) = self.obs.as_ref().filter(|h| h.enabled()) {
            h.emit(self.cost.virtual_ns, point);
        }
    }

    /// The deterministic random stream of this context.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }

    /// Charges `units` of work (and the same amount of virtual time).
    ///
    /// # Errors
    ///
    /// Returns [`FuelExhausted`] when a fuel budget is configured and the
    /// charge does not fit in the remaining budget.
    pub fn charge(&mut self, units: u64) -> Result<(), FuelExhausted> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                // The verdict is already fixed: abandon the remaining work
                // without charging for it. `run_contained` turns the
                // resulting failure into `VariantFailure::Cancelled`.
                self.cancelled = true;
                return Err(FuelExhausted);
            }
        }
        if let Some(fuel) = self.fuel.as_mut() {
            if *fuel < units {
                // Consume what is left: the hung execution did burn it.
                self.cost.work_units += *fuel;
                self.cost.virtual_ns += *fuel;
                *fuel = 0;
                let consumed = self.cost.work_units;
                self.obs_emit(|| Point::FuelExhausted { consumed });
                return Err(FuelExhausted);
            }
            *fuel -= units;
        }
        self.cost.work_units += units;
        self.cost.virtual_ns += units;
        Ok(())
    }

    /// Advances virtual time without consuming work or fuel (e.g. network
    /// latency in the service substrate).
    pub fn advance_ns(&mut self, ns: u64) {
        self.cost.virtual_ns += ns;
    }

    /// Records one variant invocation with the given design cost.
    pub fn record_invocation(&mut self, design_cost: f64) {
        self.cost.invocations += 1;
        self.cost.design_cost += design_cost;
    }

    /// Cost accumulated so far.
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Remaining fuel, or `None` when unlimited.
    #[must_use]
    pub fn remaining_fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// Resets cost to zero and refills fuel to its initial budget, keeping
    /// the random stream position (a fresh attempt in the same experiment).
    pub fn reset_metering(&mut self) {
        self.cost = Cost::ZERO;
        self.fuel = self.initial_fuel;
    }

    /// Takes the accumulated cost out of the context, leaving zero.
    pub fn take_cost(&mut self) -> Cost {
        std::mem::replace(&mut self.cost, Cost::ZERO)
    }

    /// Derives an independent child context keyed by `stream`, with fresh
    /// cost metering and a full fuel budget.
    ///
    /// Each call advances an internal fork counter that is folded into the
    /// child's stream: forking in a loop (one child per retry, per variant,
    /// per request) yields fresh randomness every time, while the overall
    /// sequence stays a pure function of the seed — results do not depend
    /// on thread scheduling, only on fork order, which pattern engines fix
    /// by forking before spawning.
    #[must_use]
    pub fn fork(&self, stream: u64) -> ExecContext {
        let n = self.forks.get();
        self.forks.set(n.wrapping_add(1));
        ExecContext {
            rng: self.rng.fork(stream).fork(n),
            cost: Cost::ZERO,
            fuel: self.initial_fuel,
            initial_fuel: self.initial_fuel,
            forks: std::cell::Cell::new(0),
            // The child shares the observer and span-id allocator and
            // inherits the parent's current span, so spans it opens nest
            // correctly. A *disabled* handle is dropped instead of cloned:
            // it could never record anything, and the two Arc refcount
            // bumps per fork would be the only observability cost left on
            // the untraced hot path. The fork counter and rng above are
            // computed identically whether or not an observer is attached.
            obs: self.obs.as_ref().filter(|h| h.enabled()).cloned(),
            // Children inherit the token so nested patterns stop too; the
            // clone is one Arc refcount bump and only paid by cancellable
            // runs (Eager threaded mode).
            cancel: self.cancel.clone(),
            cancelled: false,
        }
    }

    /// Adds a cost as a *sequential* contribution (e.g. a completed child
    /// execution whose cost was metered separately).
    pub fn add_sequential_cost(&mut self, cost: Cost) {
        self.cost = self.cost.sequential(cost);
    }

    /// Adds several costs as *parallel* contributions: work and invocations
    /// sum, virtual time takes the critical path.
    pub fn add_parallel_costs<I: IntoIterator<Item = Cost>>(&mut self, costs: I) {
        let mut combined = Cost::ZERO;
        for cost in costs {
            combined = combined.parallel(cost);
        }
        self.cost = self.cost.sequential(combined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_fuel_never_exhausts() {
        let mut ctx = ExecContext::new(1);
        for _ in 0..1000 {
            ctx.charge(1_000_000).unwrap();
        }
        assert_eq!(ctx.cost().work_units, 1_000_000_000);
    }

    #[test]
    fn fuel_exhaustion_reported_and_burned() {
        let mut ctx = ExecContext::with_fuel(1, 100);
        ctx.charge(60).unwrap();
        assert_eq!(ctx.remaining_fuel(), Some(40));
        assert_eq!(ctx.charge(60), Err(FuelExhausted));
        // The hung execution consumed the remaining budget.
        assert_eq!(ctx.remaining_fuel(), Some(0));
        assert_eq!(ctx.cost().work_units, 100);
    }

    #[test]
    fn reset_metering_refills_fuel() {
        let mut ctx = ExecContext::with_fuel(1, 50);
        let _ = ctx.charge(50);
        ctx.reset_metering();
        assert_eq!(ctx.remaining_fuel(), Some(50));
        assert_eq!(ctx.cost(), Cost::ZERO);
    }

    #[test]
    fn forks_are_deterministic_but_never_repeat() {
        // Same seed, same fork sequence -> identical children.
        let ctx1 = ExecContext::new(99);
        let ctx2 = ExecContext::new(99);
        let mut a1 = ctx1.fork(1);
        let mut a2 = ctx2.fork(1);
        assert_eq!(a1.rng().next_u64(), a2.rng().next_u64());
        // Within one context, repeated forks (even on the same stream)
        // yield fresh randomness: retries must not replay the transient
        // conditions of the failed attempt.
        let mut r1 = ctx1.fork(7);
        let mut r2 = ctx1.fork(7);
        assert_ne!(r1.rng().next_u64(), r2.rng().next_u64());
        // Distinct streams at the same position differ too.
        let ctx3 = ExecContext::new(99);
        let mut b = ctx3.fork(2);
        let mut a3 = ExecContext::new(99).fork(1);
        assert_ne!(a3.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn add_parallel_costs_uses_critical_path() {
        let mut parent = ExecContext::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        c1.charge(30).unwrap();
        c2.charge(70).unwrap();
        parent.add_parallel_costs([c1.cost(), c2.cost()]);
        assert_eq!(parent.cost().virtual_ns, 70);
        assert_eq!(parent.cost().work_units, 100);
    }

    #[test]
    fn add_sequential_cost_adds() {
        let mut parent = ExecContext::new(5);
        let mut c = parent.fork(1);
        c.charge(40).unwrap();
        parent.add_sequential_cost(c.cost());
        parent.add_sequential_cost(c.cost());
        assert_eq!(parent.cost().virtual_ns, 80);
    }

    #[test]
    fn observer_does_not_perturb_randomness_or_forks() {
        use redundancy_obs::RingBufferObserver;

        let plain = ExecContext::new(1234);
        let traced = ExecContext::new(1234).with_observer(RingBufferObserver::shared(64));
        let mut p1 = plain.fork(3);
        let mut t1 = traced.fork(3);
        assert_eq!(p1.rng().next_u64(), t1.rng().next_u64());
        let mut p2 = plain.fork(3);
        let mut t2 = traced.fork(3);
        assert_eq!(p2.rng().next_u64(), t2.rng().next_u64());
    }

    #[test]
    fn fuel_exhaustion_emits_point() {
        use redundancy_obs::{EventKind, Point, RingBufferObserver};

        let ring = RingBufferObserver::shared(16);
        let mut ctx = ExecContext::with_fuel(1, 100).with_observer(ring.clone());
        assert!(ctx.observed());
        ctx.charge(60).unwrap();
        assert_eq!(ctx.charge(60), Err(FuelExhausted));
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].kind,
            EventKind::Point(Point::FuelExhausted { consumed: 100 })
        ));
        assert_eq!(events[0].clock, 100, "emitted at post-burn virtual time");
    }

    #[test]
    fn spans_nest_across_forks() {
        use redundancy_obs::{RingBufferObserver, SpanKind, SpanStatus};

        let ring = RingBufferObserver::shared(16);
        let mut ctx = ExecContext::new(7).with_observer(ring.clone());
        let outer = ctx.obs_begin(|| SpanKind::Technique { name: "t" });
        let mut child = ctx.fork(1);
        let inner = child.obs_begin(|| SpanKind::Variant { name: "v".into() });
        child.obs_end(inner, SpanStatus::Ok, Cost::ZERO.snapshot());
        ctx.obs_end(outer, SpanStatus::Ok, ctx.cost().snapshot());
        let events = ring.events();
        assert_eq!(events.len(), 4);
        // The child's span is parented under the technique span.
        assert_eq!(events[1].parent, events[0].span);
    }

    #[test]
    fn untraced_context_skips_closures() {
        let mut ctx = ExecContext::new(0);
        assert!(!ctx.observed());
        let token = ctx.obs_begin(|| unreachable!("untraced: kind closure must not run"));
        assert!(token.is_none());
        ctx.obs_emit(|| unreachable!("untraced: point closure must not run"));
    }

    #[test]
    fn cancel_token_interrupts_charges() {
        let token = CancelToken::new();
        let mut ctx = ExecContext::new(1).with_cancel_token(token.clone());
        ctx.charge(10).unwrap();
        assert!(!ctx.was_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(ctx.charge(10), Err(FuelExhausted));
        assert!(ctx.was_cancelled());
        // The abandoned charge is not billed.
        assert_eq!(ctx.cost().work_units, 10);
    }

    #[test]
    fn cancel_token_reaches_forked_children() {
        let token = CancelToken::new();
        let ctx = ExecContext::new(1).with_cancel_token(token.clone());
        let mut child = ctx.fork(0).fork(3);
        token.cancel();
        assert_eq!(child.charge(1), Err(FuelExhausted));
        assert!(child.was_cancelled());
    }

    #[test]
    fn cancel_after_fires_on_the_nth_charge() {
        let token = CancelToken::cancel_after(3);
        let mut ctx = ExecContext::new(u64::MAX).with_cancel_token(token.clone());
        ctx.charge(1).unwrap();
        ctx.charge(1).unwrap();
        assert!(!ctx.was_cancelled());
        // The third charge check consumes the last fuse unit.
        assert_eq!(ctx.charge(1), Err(FuelExhausted));
        assert!(ctx.was_cancelled());
        // Once blown the token stays fired without further fuse math.
        assert!(token.is_cancelled());
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_after_zero_is_clamped_to_the_first_check() {
        let mut ctx = ExecContext::new(u64::MAX).with_cancel_token(CancelToken::cancel_after(0));
        assert_eq!(ctx.charge(1), Err(FuelExhausted));
    }

    #[test]
    fn contexts_without_token_ignore_cancellation() {
        let mut ctx = ExecContext::new(1);
        ctx.charge(5).unwrap();
        assert!(!ctx.was_cancelled());
    }

    #[test]
    fn record_invocation_counts() {
        let mut ctx = ExecContext::new(0);
        ctx.record_invocation(2.5);
        ctx.record_invocation(1.5);
        assert_eq!(ctx.cost().invocations, 2);
        assert!((ctx.cost().design_cost - 4.0).abs() < 1e-9);
    }
}
