//! The taxonomy of redundancy-based fault-handling mechanisms (paper §3).
//!
//! The paper classifies techniques along four dimensions, summarized in its
//! Table 1:
//!
//! | Dimension | Values |
//! |---|---|
//! | Intention | deliberate, opportunistic |
//! | Type | code, data, environment |
//! | Triggers and adjudicators | preventive (implicit), reactive-implicit, reactive-explicit |
//! | Faults addressed | development (Bohrbugs / Heisenbugs), interaction (malicious) |
//!
//! This module expresses those dimensions as Rust types, so that the
//! classification of every technique in the framework is machine-checkable
//! and Table 1 / Table 2 can be regenerated from the type system itself.

use std::fmt;

/// Whether redundancy was *deliberately designed into* the system or is
/// *latent* and exploited opportunistically (paper §3, "Intention").
///
/// ```
/// use redundancy_core::taxonomy::Intention;
/// assert_eq!(Intention::Deliberate.to_string(), "deliberate");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Intention {
    /// Redundancy added on purpose at design time (e.g. N-version
    /// programming, recovery blocks).
    Deliberate,
    /// Redundancy already latent in the system, exploited at runtime
    /// (e.g. automatic workarounds, micro-reboots).
    Opportunistic,
}

impl Intention {
    /// All values, in Table 1 order.
    pub const ALL: [Intention; 2] = [Intention::Deliberate, Intention::Opportunistic];
}

impl fmt::Display for Intention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Intention::Deliberate => "deliberate",
            Intention::Opportunistic => "opportunistic",
        })
    }
}

/// The element of the execution that is replicated (paper §3, "Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RedundancyType {
    /// Multiple implementations of the same logical functionality.
    Code,
    /// Multiple representations of the same logical information.
    Data,
    /// Multiple execution environments (memory layout, schedule, process).
    Environment,
}

impl RedundancyType {
    /// All values, in Table 1 order.
    pub const ALL: [RedundancyType; 3] = [
        RedundancyType::Code,
        RedundancyType::Data,
        RedundancyType::Environment,
    ];
}

impl fmt::Display for RedundancyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RedundancyType::Code => "code",
            RedundancyType::Data => "data",
            RedundancyType::Environment => "environment",
        })
    }
}

/// How the redundant mechanism is triggered and how its result is judged
/// (paper §3, "Triggers and adjudicators").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Adjudication {
    /// Acts before any failure is observed (implicit adjudicator), e.g.
    /// rejuvenation, preventive wrappers.
    Preventive,
    /// Reacts to failures revealed by the mechanism itself, e.g. a majority
    /// vote over parallel executions.
    ReactiveImplicit,
    /// Reacts to failures detected by an explicitly designed check, e.g. a
    /// recovery-block acceptance test.
    ReactiveExplicit,
    /// Reacts using either an implicit comparison or an explicit test
    /// depending on configuration (the paper's "expl./impl." rows).
    ReactiveMixed,
}

impl Adjudication {
    /// All values, in Table 1 order.
    pub const ALL: [Adjudication; 4] = [
        Adjudication::Preventive,
        Adjudication::ReactiveImplicit,
        Adjudication::ReactiveExplicit,
        Adjudication::ReactiveMixed,
    ];

    /// Whether the mechanism waits for a failure before acting.
    #[must_use]
    pub fn is_reactive(self) -> bool {
        !matches!(self, Adjudication::Preventive)
    }

    /// Whether an explicitly designed detector is required.
    #[must_use]
    pub fn requires_explicit_detector(self) -> bool {
        matches!(
            self,
            Adjudication::ReactiveExplicit | Adjudication::ReactiveMixed
        )
    }
}

impl fmt::Display for Adjudication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Adjudication::Preventive => "preventive",
            Adjudication::ReactiveImplicit => "reactive implicit",
            Adjudication::ReactiveExplicit => "reactive explicit",
            Adjudication::ReactiveMixed => "reactive expl./impl.",
        })
    }
}

/// The classes of software fault the paper considers (§3, "Faults", after
/// Avizienis et al. and Grottke–Trivedi).
///
/// Physical (hardware) faults are out of scope, exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultClass {
    /// Development fault that manifests deterministically under well-defined
    /// conditions.
    Bohrbug,
    /// Development fault whose activation depends on transient, hard-to
    /// -reproduce conditions (scheduling, memory layout, load, aging).
    Heisenbug,
    /// Interaction fault introduced with malicious intent (attacks).
    Malicious,
}

impl FaultClass {
    /// All values, in Table 1 order.
    pub const ALL: [FaultClass; 3] = [
        FaultClass::Bohrbug,
        FaultClass::Heisenbug,
        FaultClass::Malicious,
    ];

    /// Whether this is a development fault (as opposed to an interaction
    /// fault) in Avizienis' terms.
    #[must_use]
    pub fn is_development(self) -> bool {
        matches!(self, FaultClass::Bohrbug | FaultClass::Heisenbug)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::Bohrbug => "Bohrbugs",
            FaultClass::Heisenbug => "Heisenbugs",
            FaultClass::Malicious => "malicious",
        })
    }
}

/// A set of [`FaultClass`] values, used for the "Faults" column of Table 2.
///
/// ```
/// use redundancy_core::taxonomy::{FaultClass, FaultSet};
///
/// let dev = FaultSet::DEVELOPMENT;
/// assert!(dev.contains(FaultClass::Bohrbug));
/// assert!(dev.contains(FaultClass::Heisenbug));
/// assert!(!dev.contains(FaultClass::Malicious));
/// assert_eq!(dev.to_string(), "development");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultSet {
    bits: u8,
}

impl FaultSet {
    /// The empty set.
    pub const EMPTY: FaultSet = FaultSet { bits: 0 };
    /// Only Bohrbugs.
    pub const BOHRBUGS: FaultSet = FaultSet::single(FaultClass::Bohrbug);
    /// Only Heisenbugs.
    pub const HEISENBUGS: FaultSet = FaultSet::single(FaultClass::Heisenbug);
    /// Only malicious interaction faults.
    pub const MALICIOUS: FaultSet = FaultSet::single(FaultClass::Malicious);
    /// Development faults: Bohrbugs and Heisenbugs (the paper writes just
    /// "development" for this set).
    pub const DEVELOPMENT: FaultSet = FaultSet {
        bits: FaultSet::BOHRBUGS.bits | FaultSet::HEISENBUGS.bits,
    };
    /// Every fault class.
    pub const ALL: FaultSet = FaultSet {
        bits: FaultSet::DEVELOPMENT.bits | FaultSet::MALICIOUS.bits,
    };

    const fn bit(class: FaultClass) -> u8 {
        match class {
            FaultClass::Bohrbug => 1,
            FaultClass::Heisenbug => 2,
            FaultClass::Malicious => 4,
        }
    }

    /// A set containing exactly one class.
    #[must_use]
    pub const fn single(class: FaultClass) -> FaultSet {
        FaultSet {
            bits: FaultSet::bit(class),
        }
    }

    /// Builds a set from an iterator of classes.
    #[must_use]
    pub fn from_classes<I: IntoIterator<Item = FaultClass>>(classes: I) -> FaultSet {
        let mut set = FaultSet::EMPTY;
        for c in classes {
            set = set.with(c);
        }
        set
    }

    /// Returns this set with `class` added.
    #[must_use]
    pub const fn with(self, class: FaultClass) -> FaultSet {
        FaultSet {
            bits: self.bits | FaultSet::bit(class),
        }
    }

    /// Returns the union of the two sets.
    #[must_use]
    pub const fn union(self, other: FaultSet) -> FaultSet {
        FaultSet {
            bits: self.bits | other.bits,
        }
    }

    /// Whether `class` is in the set.
    #[must_use]
    pub const fn contains(self, class: FaultClass) -> bool {
        self.bits & FaultSet::bit(class) != 0
    }

    /// Whether the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Number of classes in the set.
    #[must_use]
    pub const fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates the classes in the set, in canonical order.
    pub fn iter(self) -> impl Iterator<Item = FaultClass> {
        FaultClass::ALL
            .into_iter()
            .filter(move |&c| self.contains(c))
    }
}

impl fmt::Display for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == FaultSet::EMPTY {
            return f.write_str("none");
        }
        if *self == FaultSet::DEVELOPMENT {
            return f.write_str("development");
        }
        if *self == FaultSet::ALL {
            return f.write_str("development, malicious");
        }
        let mut first = true;
        for class in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{class}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<FaultClass> for FaultSet {
    fn from_iter<T: IntoIterator<Item = FaultClass>>(iter: T) -> Self {
        FaultSet::from_classes(iter)
    }
}

/// The inter-component architectural patterns of the paper's Figure 1, plus
/// the intra-component case discussed in §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ArchitecturalPattern {
    /// Figure 1(a): all alternatives run, an adjudicator merges the results.
    ParallelEvaluation,
    /// Figure 1(b): alternatives run in parallel, each validated by its own
    /// adjudicator; the first validated "acting" result wins.
    ParallelSelection,
    /// Figure 1(c): alternatives run one at a time; the adjudicator promotes
    /// the next alternative on failure.
    SequentialAlternatives,
    /// Redundancy confined within a single component (wrappers, robust data
    /// structures, automatic workarounds).
    IntraComponent,
}

impl ArchitecturalPattern {
    /// All values, in Figure 1 order.
    pub const ALL: [ArchitecturalPattern; 4] = [
        ArchitecturalPattern::ParallelEvaluation,
        ArchitecturalPattern::ParallelSelection,
        ArchitecturalPattern::SequentialAlternatives,
        ArchitecturalPattern::IntraComponent,
    ];
}

impl fmt::Display for ArchitecturalPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArchitecturalPattern::ParallelEvaluation => "parallel evaluation",
            ArchitecturalPattern::ParallelSelection => "parallel selection",
            ArchitecturalPattern::SequentialAlternatives => "sequential alternatives",
            ArchitecturalPattern::IntraComponent => "intra-component",
        })
    }
}

/// A complete Table 2 row: the classification of one technique along all
/// four taxonomy dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Classification {
    /// Deliberate or opportunistic redundancy.
    pub intention: Intention,
    /// Code, data, or environment redundancy.
    pub redundancy: RedundancyType,
    /// Trigger/adjudicator discipline.
    pub adjudication: Adjudication,
    /// Fault classes the technique primarily addresses.
    pub faults: FaultSet,
}

impl Classification {
    /// Convenience constructor.
    #[must_use]
    pub const fn new(
        intention: Intention,
        redundancy: RedundancyType,
        adjudication: Adjudication,
        faults: FaultSet,
    ) -> Self {
        Self {
            intention,
            redundancy,
            adjudication,
            faults,
        }
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / {} / {}",
            self.intention, self.redundancy, self.adjudication, self.faults
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_set_membership() {
        let s = FaultSet::from_classes([FaultClass::Bohrbug, FaultClass::Malicious]);
        assert!(s.contains(FaultClass::Bohrbug));
        assert!(s.contains(FaultClass::Malicious));
        assert!(!s.contains(FaultClass::Heisenbug));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn fault_set_union_and_iter() {
        let s = FaultSet::BOHRBUGS.union(FaultSet::HEISENBUGS);
        assert_eq!(s, FaultSet::DEVELOPMENT);
        let classes: Vec<_> = s.iter().collect();
        assert_eq!(classes, vec![FaultClass::Bohrbug, FaultClass::Heisenbug]);
    }

    #[test]
    fn fault_set_display_matches_paper_vocabulary() {
        assert_eq!(FaultSet::DEVELOPMENT.to_string(), "development");
        assert_eq!(FaultSet::BOHRBUGS.to_string(), "Bohrbugs");
        assert_eq!(FaultSet::HEISENBUGS.to_string(), "Heisenbugs");
        assert_eq!(FaultSet::MALICIOUS.to_string(), "malicious");
        assert_eq!(
            FaultSet::BOHRBUGS.with(FaultClass::Malicious).to_string(),
            "Bohrbugs, malicious"
        );
        assert_eq!(FaultSet::EMPTY.to_string(), "none");
        assert_eq!(FaultSet::ALL.to_string(), "development, malicious");
    }

    #[test]
    fn fault_set_collect() {
        let s: FaultSet = FaultClass::ALL.into_iter().collect();
        assert_eq!(s, FaultSet::ALL);
    }

    #[test]
    fn development_classes() {
        assert!(FaultClass::Bohrbug.is_development());
        assert!(FaultClass::Heisenbug.is_development());
        assert!(!FaultClass::Malicious.is_development());
    }

    #[test]
    fn adjudication_predicates() {
        assert!(!Adjudication::Preventive.is_reactive());
        assert!(Adjudication::ReactiveImplicit.is_reactive());
        assert!(!Adjudication::ReactiveImplicit.requires_explicit_detector());
        assert!(Adjudication::ReactiveExplicit.requires_explicit_detector());
        assert!(Adjudication::ReactiveMixed.requires_explicit_detector());
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(RedundancyType::Environment.to_string(), "environment");
        assert_eq!(
            Adjudication::ReactiveMixed.to_string(),
            "reactive expl./impl."
        );
        assert_eq!(
            ArchitecturalPattern::SequentialAlternatives.to_string(),
            "sequential alternatives"
        );
    }

    #[test]
    fn classification_display() {
        let c = Classification::new(
            Intention::Deliberate,
            RedundancyType::Code,
            Adjudication::ReactiveImplicit,
            FaultSet::DEVELOPMENT,
        );
        assert_eq!(
            c.to_string(),
            "deliberate / code / reactive implicit / development"
        );
    }

    #[test]
    fn empty_set_reports_empty() {
        assert!(FaultSet::EMPTY.is_empty());
        assert!(!FaultSet::BOHRBUGS.is_empty());
        assert_eq!(FaultSet::EMPTY.len(), 0);
    }
}
