//! The [`Technique`] trait: the contract every fault-handling mechanism in
//! the framework fulfills, and the machinery that regenerates the paper's
//! Table 2 from it.

use std::fmt;

use crate::taxonomy::{ArchitecturalPattern, Classification};

/// A redundancy-based fault-handling technique (one row of Table 2).
///
/// Implementations live in the `redundancy-techniques` crate; the trait
/// lives here so every layer can describe techniques uniformly.
pub trait Technique {
    /// The technique's name as it appears in the paper's Table 2.
    fn name(&self) -> &'static str;

    /// The taxonomy classification — must match the paper's Table 2 row,
    /// which conformance tests assert.
    fn classification(&self) -> Classification;

    /// The architectural pattern(s) the technique instantiates (paper §2).
    fn patterns(&self) -> &'static [ArchitecturalPattern];

    /// Key citations from the paper for this technique.
    fn citations(&self) -> &'static [&'static str] {
        &[]
    }
}

/// A static description of a technique, used by registries and by the
/// Table 2 regenerator without instantiating the technique itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechniqueEntry {
    /// Table 2 row label.
    pub name: &'static str,
    /// Taxonomy classification.
    pub classification: Classification,
    /// Architectural patterns instantiated.
    pub patterns: &'static [ArchitecturalPattern],
    /// Key citations.
    pub citations: &'static [&'static str],
}

impl fmt::Display for TechniqueEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.classification)
    }
}

/// Renders entries as the paper's Table 2 (fixed-width text).
#[must_use]
pub fn render_table2(entries: &[TechniqueEntry]) -> String {
    let headers = ["Technique", "Intention", "Type", "Adjudicator", "Faults"];
    let rows: Vec<[String; 5]> = entries
        .iter()
        .map(|e| {
            [
                e.name.to_owned(),
                e.classification.intention.to_string(),
                e.classification.redundancy.to_string(),
                e.classification.adjudication.to_string(),
                e.classification.faults.to_string(),
            ]
        })
        .collect();
    let mut widths = headers.map(str::len);
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String; 5]| {
        for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', w - cell.len()));
        }
        // Trim trailing padding on the last column.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    write_row(&mut out, &headers.map(str::to_owned));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.extend(std::iter::repeat_n('-', total));
    out.push('\n');
    for row in &rows {
        write_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{Adjudication, FaultSet, Intention, RedundancyType};

    fn sample_entry() -> TechniqueEntry {
        TechniqueEntry {
            name: "N-version programming",
            classification: Classification::new(
                Intention::Deliberate,
                RedundancyType::Code,
                Adjudication::ReactiveImplicit,
                FaultSet::DEVELOPMENT,
            ),
            patterns: &[ArchitecturalPattern::ParallelEvaluation],
            citations: &["Avizienis 1985"],
        }
    }

    #[test]
    fn entry_display() {
        let e = sample_entry();
        assert_eq!(
            e.to_string(),
            "N-version programming: deliberate / code / reactive implicit / development"
        );
    }

    #[test]
    fn table_contains_all_rows_and_headers() {
        let table = render_table2(&[sample_entry()]);
        assert!(table.contains("Technique"));
        assert!(table.contains("Adjudicator"));
        assert!(table.contains("N-version programming"));
        assert!(table.contains("reactive implicit"));
        assert!(table.contains("development"));
    }

    #[test]
    fn table_rows_are_aligned() {
        let other = TechniqueEntry {
            name: "Rejuvenation",
            classification: Classification::new(
                Intention::Deliberate,
                RedundancyType::Environment,
                Adjudication::Preventive,
                FaultSet::HEISENBUGS,
            ),
            patterns: &[],
            citations: &[],
        };
        let table = render_table2(&[sample_entry(), other]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
                                    // Column 2 ("Intention") starts at the same offset in every row.
        let header_off = lines[0].find("Intention").unwrap();
        assert_eq!(&lines[2][header_off..header_off + 10], "deliberate");
        assert_eq!(&lines[3][header_off..header_off + 10], "deliberate");
    }

    #[test]
    fn technique_trait_is_object_safe() {
        struct Dummy;
        impl Technique for Dummy {
            fn name(&self) -> &'static str {
                "dummy"
            }
            fn classification(&self) -> Classification {
                sample_entry().classification
            }
            fn patterns(&self) -> &'static [ArchitecturalPattern] {
                &[ArchitecturalPattern::IntraComponent]
            }
        }
        let t: Box<dyn Technique> = Box::new(Dummy);
        assert_eq!(t.name(), "dummy");
        assert!(t.citations().is_empty());
    }
}
