//! Trial forensics: reconstruct per-trial stories from a flat event
//! stream recorded during [`Campaign::run_traced`].
//!
//! A traced campaign interleaves nothing — trials run sequentially — but
//! the recorded stream is flat and may have lost its oldest events to a
//! bounded ring buffer. [`split_trials`] recovers one [`TrialTrace`] per
//! *complete* trial span; each trace answers the questions an
//! experimenter asks after the fact: which variants ran and how did each
//! conclude, what did the adjudicator decide (and why, when it
//! rejected), and what did the whole trial cost.
//!
//! [`Campaign::run_traced`]: crate::trial::Campaign::run_traced

use redundancy_core::obs::{CostSnapshot, Event, EventKind, Point, SpanId, SpanKind, SpanStatus};

/// One adjudicator decision inside a trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictRecord {
    /// Whether an output was accepted.
    pub accepted: bool,
    /// Outcomes supporting the accepted output (0 when rejected).
    pub support: usize,
    /// Outcomes dissenting (0 when rejected).
    pub dissent: usize,
    /// Rejection reason label when rejected.
    pub rejection: Option<&'static str>,
}

/// Whether a variant actually ran, coarser than its raw [`SpanStatus`]:
/// eager decision policies close variant spans for work they *avoided*
/// (`VariantFailure::Skipped` / `Cancelled`), and forensics must not
/// count those as executions.
///
/// [`VariantFailure::Skipped`]: redundancy_core::outcome::VariantFailure
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantDisposition {
    /// The variant ran to its own conclusion (success or genuine
    /// failure).
    Executed,
    /// The variant never started: the verdict was already fixed
    /// (zero-cost span, status `Failed { kind: "skipped" }`).
    Skipped,
    /// The variant started but was cooperatively cancelled after the
    /// verdict fixed (status `Failed { kind: "cancelled" }`).
    Cancelled,
}

impl VariantDisposition {
    fn from_status(status: &SpanStatus) -> Self {
        match status {
            SpanStatus::Failed { kind: "skipped" } => VariantDisposition::Skipped,
            SpanStatus::Failed { kind: "cancelled" } => VariantDisposition::Cancelled,
            _ => VariantDisposition::Executed,
        }
    }
}

/// One variant execution inside a trial.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantRecord {
    /// The variant's name.
    pub name: String,
    /// How it concluded.
    pub status: SpanStatus,
    /// Whether it actually ran (see [`VariantDisposition`]).
    pub disposition: VariantDisposition,
    /// What it cost.
    pub cost: CostSnapshot,
}

/// The reconstructed story of one Monte-Carlo trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialTrace {
    /// Trial index within the campaign.
    pub index: u64,
    /// The derived per-trial seed.
    pub seed: u64,
    /// Disposition label (`"correct"`, `"undetected"`, `"detected"`),
    /// empty when the trial span never closed in the captured window.
    pub disposition: &'static str,
    /// Total cost attributed to the trial span.
    pub cost: CostSnapshot,
    /// Every event between the trial span's start and end, inclusive.
    pub events: Vec<Event>,
}

impl TrialTrace {
    /// Every variant execution in the trial, in start order.
    #[must_use]
    pub fn variants(&self) -> Vec<VariantRecord> {
        let mut open: Vec<(SpanId, String)> = Vec::new();
        let mut out = Vec::new();
        for event in &self.events {
            match &event.kind {
                EventKind::SpanStart {
                    kind: SpanKind::Variant { name },
                } => open.push((event.span, name.resolve().to_owned())),
                EventKind::SpanEnd { status, cost } => {
                    if let Some(pos) = open.iter().position(|(id, _)| *id == event.span) {
                        let (_, name) = open.remove(pos);
                        out.push(VariantRecord {
                            name,
                            disposition: VariantDisposition::from_status(status),
                            status: *status,
                            cost: *cost,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Every adjudicator verdict in the trial, in emission order.
    #[must_use]
    pub fn verdicts(&self) -> Vec<VerdictRecord> {
        self.events
            .iter()
            .filter_map(|event| match &event.kind {
                EventKind::Point(Point::Verdict {
                    accepted,
                    support,
                    dissent,
                    rejection,
                }) => Some(VerdictRecord {
                    accepted: *accepted,
                    support: *support,
                    dissent: *dissent,
                    rejection: *rejection,
                }),
                _ => None,
            })
            .collect()
    }

    /// Rejection reason labels, in emission order (empty when every
    /// verdict accepted).
    #[must_use]
    pub fn rejection_reasons(&self) -> Vec<&'static str> {
        self.verdicts()
            .into_iter()
            .filter_map(|v| v.rejection)
            .collect()
    }

    /// The trial's early-exit point, if a streaming adjudicator fixed
    /// its verdict before every variant ran: `(executed, total)` from
    /// [`Point::EarlyDecision`]. `None` for exhaustive trials.
    #[must_use]
    pub fn early_exit(&self) -> Option<(usize, usize)> {
        self.events.iter().find_map(|event| match &event.kind {
            EventKind::Point(Point::EarlyDecision { executed, total }) => Some((*executed, *total)),
            _ => None,
        })
    }

    /// Names of variants cooperatively cancelled after the verdict was
    /// already fixed ([`Point::VariantCancelled`]), in emission order.
    #[must_use]
    pub fn cancelled_variants(&self) -> Vec<String> {
        self.events
            .iter()
            .filter_map(|event| match &event.kind {
                EventKind::Point(Point::VariantCancelled { variant }) => {
                    Some(variant.resolve().to_owned())
                }
                _ => None,
            })
            .collect()
    }

    /// Labels of the techniques that ran in the trial, in start order.
    #[must_use]
    pub fn techniques(&self) -> Vec<&'static str> {
        self.events
            .iter()
            .filter_map(|event| match &event.kind {
                EventKind::SpanStart {
                    kind: SpanKind::Technique { name },
                } => Some(*name),
                _ => None,
            })
            .collect()
    }

    /// Whether the trial delivered a correct result.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.disposition == "correct"
    }
}

/// Splits a flat event stream into per-trial traces.
///
/// Only *complete* trials — both the `SpanStart` and the `SpanEnd` of a
/// [`SpanKind::Trial`] span present in `events` — are returned, so a
/// ring buffer that evicted the head of the stream simply yields fewer
/// traces rather than a mangled first one.
#[must_use]
pub fn split_trials(events: &[Event]) -> Vec<TrialTrace> {
    let mut out = Vec::new();
    let mut current: Option<(SpanId, TrialTrace)> = None;
    for event in events {
        match &event.kind {
            EventKind::SpanStart {
                kind: SpanKind::Trial { index, seed },
            } => {
                // A new trial begins; an unterminated predecessor is
                // dropped (its end was never recorded).
                current = Some((
                    event.span,
                    TrialTrace {
                        index: *index,
                        seed: *seed,
                        disposition: "",
                        cost: CostSnapshot::ZERO,
                        events: vec![*event],
                    },
                ));
            }
            EventKind::SpanEnd { status, cost } => {
                if let Some((span, trace)) = &mut current {
                    trace.events.push(*event);
                    if event.span == *span {
                        if let SpanStatus::Trial { disposition } = status {
                            trace.disposition = disposition;
                        }
                        trace.cost = *cost;
                        let (_, done) = current.take().expect("current trial present");
                        out.push(done);
                    }
                }
            }
            _ => {
                if let Some((_, trace)) = &mut current {
                    trace.events.push(*event);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::{Campaign, TrialOutcome};
    use redundancy_core::adjudicator::voting::MajorityVoter;
    use redundancy_core::context::ExecContext;
    use redundancy_core::obs::RingBufferObserver;
    use redundancy_core::outcome::VariantFailure;
    use redundancy_core::patterns::parallel::ParallelEvaluation;
    use redundancy_core::variant::{pure_variant, FnVariant};

    fn nvp() -> ParallelEvaluation<i64, i64> {
        ParallelEvaluation::new(MajorityVoter::new())
            .with_variant(pure_variant("a", 10, |x: &i64| x + 1))
            .with_variant(pure_variant("b", 10, |x: &i64| x + 1))
            .with_variant(Box::new(FnVariant::new(
                "crasher",
                |_: &i64, _: &mut ExecContext| Err::<i64, _>(VariantFailure::crash("boom")),
            )))
    }

    #[test]
    fn traced_campaign_splits_into_per_trial_traces() {
        let ring = RingBufferObserver::shared(4096);
        let pattern = nvp();
        let summary = Campaign::new(3).run_traced(42, ring.clone(), |ctx, _seed, _i| {
            let report = pattern.run(&1, ctx);
            let cost = ctx.cost();
            if report.verdict.output() == Some(&2) {
                TrialOutcome::Correct { cost }
            } else {
                TrialOutcome::Detected { cost }
            }
        });
        assert_eq!(summary.reliability.successes, 3);

        let traces = split_trials(&ring.events());
        assert_eq!(traces.len(), 3);
        for (i, trace) in traces.iter().enumerate() {
            assert_eq!(trace.index, i as u64);
            assert_eq!(trace.seed, Campaign::trial_seed(42, i));
            assert_eq!(trace.disposition, "correct");
            assert!(trace.is_correct());

            // Every variant outcome is reconstructable.
            let variants = trace.variants();
            assert_eq!(variants.len(), 3);
            assert_eq!(variants[0].name, "a");
            assert_eq!(variants[0].status, SpanStatus::Ok);
            assert_eq!(variants[2].name, "crasher");
            assert_eq!(variants[2].status, SpanStatus::Failed { kind: "crash" });

            // The adjudicator's verdict is reconstructable.
            let verdicts = trace.verdicts();
            assert_eq!(verdicts.len(), 1);
            assert!(verdicts[0].accepted);
            assert_eq!(verdicts[0].support, 2);
            assert_eq!(verdicts[0].dissent, 1);
            assert!(trace.rejection_reasons().is_empty());

            // Total cost matches the trial outcome's cost.
            assert_eq!(trace.cost.invocations, 3);
            assert_eq!(trace.cost.work_units, 20);
        }
    }

    #[test]
    fn incomplete_head_trial_is_dropped() {
        let ring = RingBufferObserver::shared(4096);
        let pattern = nvp();
        let _ = Campaign::new(2).run_traced(7, ring.clone(), |ctx, _seed, _i| {
            let _ = pattern.run(&1, ctx);
            TrialOutcome::Correct { cost: ctx.cost() }
        });
        let mut events = ring.events();
        // Simulate ring eviction: lose the first trial's SpanStart.
        events.remove(0);
        let traces = split_trials(&events);
        assert_eq!(traces.len(), 1, "only the complete trial survives");
        assert_eq!(traces[0].index, 1);
    }

    #[test]
    fn eager_campaign_traces_reconcile_skipped_variants_and_costs() {
        use redundancy_core::patterns::DecisionPolicy;
        let ring = RingBufferObserver::shared(4096);
        let pattern: ParallelEvaluation<i64, i64> = ParallelEvaluation::new(MajorityVoter::new())
            .with_policy(DecisionPolicy::Eager)
            .with_variant(pure_variant("a", 10, |x: &i64| x + 1))
            .with_variant(pure_variant("b", 10, |x: &i64| x + 1))
            .with_variant(pure_variant("c", 10, |x: &i64| x + 1));
        let summary = Campaign::new(3).run_traced(33, ring.clone(), |ctx, _seed, _i| {
            let report = pattern.run(&1, ctx);
            let cost = ctx.cost();
            if report.verdict.output() == Some(&2) {
                TrialOutcome::Correct { cost }
            } else {
                TrialOutcome::Detected { cost }
            }
        });
        assert_eq!(summary.reliability.successes, 3);

        let traces = split_trials(&ring.events());
        assert_eq!(traces.len(), 3);
        for trace in &traces {
            // The eager majority fixed after two agreeing outcomes; the
            // third variant's span exists but records avoided work.
            let variants = trace.variants();
            assert_eq!(variants.len(), 3);
            assert_eq!(variants[0].disposition, VariantDisposition::Executed);
            assert_eq!(variants[1].disposition, VariantDisposition::Executed);
            assert_eq!(variants[2].disposition, VariantDisposition::Skipped);
            assert_eq!(variants[2].status, SpanStatus::Failed { kind: "skipped" });
            assert_eq!(variants[2].cost, CostSnapshot::ZERO);
            assert_eq!(trace.early_exit(), Some((2, 3)));
            assert!(trace.cancelled_variants().is_empty());
            // Cost reconciliation: the trial paid exactly the executed
            // variants' work, nothing for the skipped one.
            let executed: u64 = variants
                .iter()
                .filter(|v| v.disposition == VariantDisposition::Executed)
                .map(|v| v.cost.work_units)
                .sum();
            assert_eq!(executed, 20);
            assert_eq!(trace.cost.work_units, 20);
            // The skipped span's "failure" is bookkeeping, not a
            // rejection: the verdict accepted.
            assert!(trace.rejection_reasons().is_empty());
            assert!(trace.verdicts()[0].accepted);
        }
    }

    #[test]
    fn cancelled_variants_surface_in_the_trace() {
        use redundancy_core::obs::ROOT_SPAN;
        // Hand-built stream: threaded-eager cancellation is
        // timing-dependent, but its event shape is fixed.
        let mk = |seq, span, parent, kind| Event {
            seq,
            span,
            parent,
            clock: 0,
            kind,
        };
        let events = vec![
            mk(
                0,
                1,
                ROOT_SPAN,
                EventKind::SpanStart {
                    kind: SpanKind::Trial { index: 0, seed: 9 },
                },
            ),
            mk(
                1,
                2,
                1,
                EventKind::SpanStart {
                    kind: SpanKind::Variant {
                        name: "straggler".into(),
                    },
                },
            ),
            mk(
                2,
                2,
                1,
                EventKind::Point(Point::VariantCancelled {
                    variant: "straggler".into(),
                }),
            ),
            mk(
                3,
                2,
                1,
                EventKind::SpanEnd {
                    status: SpanStatus::Failed { kind: "cancelled" },
                    cost: CostSnapshot::ZERO,
                },
            ),
            mk(
                4,
                1,
                ROOT_SPAN,
                EventKind::SpanEnd {
                    status: SpanStatus::Trial {
                        disposition: "correct",
                    },
                    cost: CostSnapshot::ZERO,
                },
            ),
        ];
        let traces = split_trials(&events);
        assert_eq!(traces.len(), 1);
        let variants = traces[0].variants();
        assert_eq!(variants.len(), 1);
        assert_eq!(variants[0].disposition, VariantDisposition::Cancelled);
        assert_eq!(traces[0].cancelled_variants(), vec!["straggler".to_owned()]);
        assert_eq!(traces[0].early_exit(), None);
    }

    #[test]
    fn rejection_reasons_surface_in_the_trace() {
        let ring = RingBufferObserver::shared(4096);
        let pattern: ParallelEvaluation<i64, i64> = ParallelEvaluation::new(MajorityVoter::new())
            .with_variant(pure_variant("one", 5, |x: &i64| x + 1))
            .with_variant(pure_variant("two", 5, |x: &i64| x + 2))
            .with_variant(pure_variant("three", 5, |x: &i64| x + 3));
        let _ = Campaign::new(1).run_traced(9, ring.clone(), |ctx, _seed, _i| {
            let report = pattern.run(&1, ctx);
            assert!(!report.verdict.is_accepted());
            TrialOutcome::Detected { cost: ctx.cost() }
        });
        let traces = split_trials(&ring.events());
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].disposition, "detected");
        assert_eq!(traces[0].rejection_reasons(), vec!["no_quorum"]);
    }
}
