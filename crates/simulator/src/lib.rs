//! The Monte-Carlo experiment harness of the `redundancy` framework.
//!
//! Every quantitative claim reproduced from the paper (experiments T2 and
//! E4–E16 in `EXPERIMENTS.md`) is measured here: a [`trial::Campaign`]
//! runs a seeded closure many times, classifies each run, and summarizes
//! the results with proper interval estimates ([`stats`]). Human-readable
//! tables come from [`table::Table`].
//!
//! With [`trial::Campaign::run_traced`] every trial additionally records
//! a structured execution trace; [`forensics`] reconstructs per-trial
//! stories (variant outcomes, adjudicator verdicts, costs) from the
//! recorded stream.
//!
//! Campaigns measuring eager decision policies aggregate the redundancy
//! they avoided paying for with [`early_exit::EarlyExitCounters`] (safe
//! to share across campaign workers) and quantify the saving with
//! [`early_exit::work_saved`].
//!
//! Campaign trials are independently seeded and therefore embarrassingly
//! parallel: [`trial::Campaign::run_parallel`] and
//! [`trial::Campaign::run_traced_parallel`] shard them across the
//! persistent worker pool ([`pool`]) in chunks ([`parallel`]) while
//! producing bit-for-bit the same summary — and, for traced runs, the
//! same event stream — as the serial paths.
//!
//! A running campaign can be watched live: the engine's hot paths feed
//! lock-free telemetry shards (chunk claims, sampled trial durations,
//! merge stalls, checkpoint commit lag, chaos faults, pool panics), and
//! [`monitor::CampaignMonitor`] samples them in the background to drive
//! a stderr progress line plus Prometheus-text and JSONL export — the
//! campaign flight recorder. Monitoring never changes results:
//! summaries and traced streams are bit-identical with it on or off.

#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod early_exit;
pub mod forensics;
pub mod monitor;
pub mod parallel;
pub mod pool;
pub mod stats;
pub mod table;
pub mod trial;

pub use chaos::ChaosPlan;
pub use checkpoint::{CheckpointLog, CheckpointSpec, Resumed};
pub use early_exit::{work_saved, EarlyExitCounters, EarlyExitStats, WorkSaved};
pub use forensics::{split_trials, TrialTrace, VariantDisposition, VariantRecord, VerdictRecord};
pub use monitor::{CampaignMonitor, MonitorConfig};
pub use parallel::{
    available_jobs, chunk_size, parallel_indexed, parallel_indexed_chunked,
    parallel_indexed_chunked_hooked, parallel_tasks, parallel_tasks_lpt,
};
pub use pool::WorkerPool;
pub use stats::{mean_ci, wilson_interval, Estimate, Proportion};
pub use table::Table;
pub use trial::{Campaign, TrialOutcome, TrialSummary};
