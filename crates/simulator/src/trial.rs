//! Monte-Carlo campaigns: run a seeded trial many times, classify and
//! summarize.

use std::sync::Arc;

use redundancy_core::context::ExecContext;
use redundancy_core::cost::Cost;
use redundancy_core::obs::{
    with_worker_shard, ObsHandle, Observer, ShardPool, SpanKind, SpanStatus, StreamingMerger,
};

use crate::parallel::{chunk_size, parallel_indexed, parallel_indexed_chunked};
use crate::stats::{mean_ci, wilson_interval, Estimate, Proportion};

/// The classification of one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialOutcome {
    /// The system delivered a correct result.
    Correct {
        /// Cost of the trial.
        cost: Cost,
    },
    /// The system delivered a wrong result *without noticing* — the worst
    /// outcome (undetected failure).
    Undetected {
        /// Cost of the trial.
        cost: Cost,
    },
    /// The system failed but *knew* it failed (fail-stop).
    Detected {
        /// Cost of the trial.
        cost: Cost,
    },
}

impl TrialOutcome {
    /// The cost of the trial.
    #[must_use]
    pub fn cost(&self) -> Cost {
        match self {
            TrialOutcome::Correct { cost }
            | TrialOutcome::Undetected { cost }
            | TrialOutcome::Detected { cost } => *cost,
        }
    }

    /// Whether the trial delivered a correct result.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        matches!(self, TrialOutcome::Correct { .. })
    }

    /// The disposition label used in trace spans (`"correct"`,
    /// `"undetected"` or `"detected"`).
    #[must_use]
    pub fn disposition(&self) -> &'static str {
        match self {
            TrialOutcome::Correct { .. } => "correct",
            TrialOutcome::Undetected { .. } => "undetected",
            TrialOutcome::Detected { .. } => "detected",
        }
    }
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSummary {
    /// Reliability: fraction of correct trials, with Wilson interval.
    pub reliability: Proportion,
    /// Fraction of undetected (silent) failures.
    pub undetected: Proportion,
    /// Fraction of detected (fail-stop) failures.
    pub detected: Proportion,
    /// Mean work units per trial.
    pub work: Estimate,
    /// Mean virtual time per trial.
    pub latency: Estimate,
    /// Mean invocations per trial.
    pub invocations: Estimate,
    /// Total design cost charged across the campaign divided by trials.
    pub design_cost: f64,
}

/// A seeded Monte-Carlo campaign.
///
/// # Examples
///
/// ```
/// use redundancy_core::cost::Cost;
/// use redundancy_sim::trial::{Campaign, TrialOutcome};
///
/// // A fake system that succeeds on even seeds.
/// let summary = Campaign::new(1000).run(7, |seed, _trial| {
///     if seed % 2 == 0 {
///         TrialOutcome::Correct { cost: Cost::ZERO }
///     } else {
///         TrialOutcome::Detected { cost: Cost::ZERO }
///     }
/// });
/// assert_eq!(summary.reliability.trials, 1000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    trials: usize,
}

impl Campaign {
    /// Creates a campaign of `trials` runs.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    #[must_use]
    pub fn new(trials: usize) -> Self {
        assert!(trials > 0, "a campaign needs at least one trial");
        Self { trials }
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The derived seed of trial `i` under `campaign_seed` (what
    /// [`run`](Self::run) passes to the trial closure).
    #[must_use]
    pub fn trial_seed(campaign_seed: u64, i: usize) -> u64 {
        campaign_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((i as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            ^ 0x94d0_49bb_1331_11eb
    }

    /// Runs the campaign: `trial(seed, index)` is called once per trial
    /// with a distinct derived seed.
    pub fn run<F>(&self, campaign_seed: u64, mut trial: F) -> TrialSummary
    where
        F: FnMut(u64, usize) -> TrialOutcome,
    {
        let mut outcomes = Vec::with_capacity(self.trials);
        for i in 0..self.trials {
            outcomes.push(trial(Self::trial_seed(campaign_seed, i), i));
        }
        summarize(&outcomes)
    }

    /// Runs the campaign with execution tracing: every trial gets an
    /// [`ExecContext`] seeded exactly as [`run`](Self::run) would seed it
    /// and attached to `observer`, and is wrapped in a
    /// [`SpanKind::Trial`] span whose end status records the disposition.
    ///
    /// All trials share one span-id allocator, so the recorded stream can
    /// be split back into per-trial traces with
    /// [`crate::forensics::split_trials`].
    pub fn run_traced<F>(
        &self,
        campaign_seed: u64,
        observer: Arc<dyn Observer>,
        mut trial: F,
    ) -> TrialSummary
    where
        F: FnMut(&mut ExecContext, u64, usize) -> TrialOutcome,
    {
        let handle = ObsHandle::new(observer);
        let mut outcomes = Vec::with_capacity(self.trials);
        for i in 0..self.trials {
            let seed = Self::trial_seed(campaign_seed, i);
            let mut ctx = ExecContext::new(seed).with_obs_handle(handle.clone());
            let span = ctx.obs_begin(|| SpanKind::Trial {
                index: i as u64,
                seed,
            });
            let outcome = trial(&mut ctx, seed, i);
            ctx.obs_end(
                span,
                SpanStatus::Trial {
                    disposition: outcome.disposition(),
                },
                outcome.cost().snapshot(),
            );
            outcomes.push(outcome);
        }
        summarize(&outcomes)
    }

    /// Runs the campaign with trials sharded across up to `jobs` worker
    /// threads (`std::thread::scope`; no threads at all for `jobs <= 1`).
    ///
    /// Each trial derives its own seed exactly as [`run`](Self::run)
    /// does and outcomes are collected in trial-index order, so the
    /// returned [`TrialSummary`] is **bit-for-bit identical** to the
    /// serial one for any worker count — parallelism changes wall-clock
    /// time, never results. The only difference from [`run`](Self::run)
    /// is the closure bound: workers share it, so it must be `Fn + Sync`
    /// rather than `FnMut`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the trial closure, like [`run`](Self::run).
    pub fn run_parallel<F>(&self, campaign_seed: u64, jobs: usize, trial: F) -> TrialSummary
    where
        F: Fn(u64, usize) -> TrialOutcome + Sync,
    {
        let outcomes = parallel_indexed(jobs, self.trials, |i| {
            trial(Self::trial_seed(campaign_seed, i), i)
        });
        summarize(&outcomes)
    }

    /// Runs a traced campaign with trials sharded across up to `jobs`
    /// worker threads, preserving both the summary *and* the recorded
    /// event stream of the serial [`run_traced`](Self::run_traced).
    ///
    /// Concurrent trials cannot share one span-id allocator without
    /// interleaving their streams in scheduling order, so every trial
    /// records into its worker's pooled
    /// [`CollectorObserver`](redundancy_core::obs::CollectorObserver)
    /// shard through a fresh [`ObsHandle`]. As soon as every earlier
    /// trial has finished, a trial's shard is forwarded to `observer`
    /// with its span ids renumbered into one campaign-wide sequence
    /// ([`StreamingMerger`]) — exactly the ids and record order the
    /// serial shared allocator produces. The stream `observer` sees is
    /// therefore bit-for-bit identical to the serial one, and
    /// [`crate::forensics::split_trials`] applies unchanged.
    ///
    /// Unlike the first generation of this method (which buffered every
    /// shard until the campaign ended), peak buffering is bounded by a
    /// small window of in-flight trials — workers that run too far ahead
    /// of the merge frontier wait for it — so a bounded `observer` (e.g.
    /// a ring buffer) bounds peak memory too, independent of campaign
    /// length. Drained shard allocations are recycled through a
    /// [`ShardPool`], making steady-state trace collection
    /// allocation-free.
    pub fn run_traced_parallel<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        observer: Arc<dyn Observer>,
        trial: F,
    ) -> TrialSummary
    where
        F: Fn(&mut ExecContext, u64, usize) -> TrialOutcome + Sync,
    {
        self.run_traced_parallel_stats(campaign_seed, jobs, observer, trial)
            .0
    }

    /// Like [`run_traced_parallel`](Self::run_traced_parallel), but also
    /// returns the merge statistics (buffering window and high-water
    /// mark), so callers — and the memory-bound tests — can observe that
    /// streaming actually bounded peak shard buffering.
    pub fn run_traced_parallel_stats<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        observer: Arc<dyn Observer>,
        trial: F,
    ) -> (TrialSummary, TracedMergeStats)
    where
        F: Fn(&mut ExecContext, u64, usize) -> TrialOutcome + Sync,
    {
        if !observer.enabled() {
            // A disabled sink records nothing either way; skip the
            // per-trial shards entirely. Contexts are seeded identically,
            // and tracing never perturbs the random stream, so outcomes
            // are unchanged.
            let summary = self.run_parallel(campaign_seed, jobs, |seed, i| {
                trial(&mut ExecContext::new(seed), seed, i)
            });
            return (
                summary,
                TracedMergeStats {
                    window: 0,
                    peak_buffered: 0,
                },
            );
        }
        let jobs = jobs.clamp(1, self.trials);
        let chunk = chunk_size(self.trials, jobs);
        // Big enough that a full complement of workers each holding one
        // in-flight chunk never stalls; small enough that peak buffering
        // stays O(jobs · chunk), not O(trials). Blocking on the window is
        // deadlock-free: chunks are claimed in ascending index order, so
        // the worker that owns the merge frontier's trial is never the
        // one waiting (see [`StreamingMerger::with_window`]).
        let window = (2 * jobs * chunk).max(16).min(self.trials.max(1));
        let shard_pool = Arc::new(ShardPool::new());
        let merger = StreamingMerger::new(observer)
            .with_pool(Arc::clone(&shard_pool))
            .with_window(window);
        let outcomes = parallel_indexed_chunked(jobs, self.trials, chunk, |i| {
            let seed = Self::trial_seed(campaign_seed, i);
            let (outcome, events) = with_worker_shard(|shard| {
                shard.install_buffer(shard_pool.check_out());
                let handle = ObsHandle::new(Arc::clone(shard) as Arc<dyn Observer>);
                let mut ctx = ExecContext::new(seed).with_obs_handle(handle);
                let span = ctx.obs_begin(|| SpanKind::Trial {
                    index: i as u64,
                    seed,
                });
                let outcome = trial(&mut ctx, seed, i);
                ctx.obs_end(
                    span,
                    SpanStatus::Trial {
                        disposition: outcome.disposition(),
                    },
                    outcome.cost().snapshot(),
                );
                (outcome, shard.take())
            });
            merger.submit(i, events);
            outcome
        });
        let stats = TracedMergeStats {
            window,
            peak_buffered: merger.peak_buffered(),
        };
        (summarize(&outcomes), stats)
    }
}

/// How the streaming merge of a traced parallel campaign behaved; see
/// [`Campaign::run_traced_parallel_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedMergeStats {
    /// The buffering window the merge enforced (0 when tracing was
    /// disabled and no merge ran).
    pub window: usize,
    /// High-water mark of simultaneously buffered trial shards.
    pub peak_buffered: usize,
}

/// Summarizes a slice of trial outcomes.
///
/// # Panics
///
/// Panics if `outcomes` is empty.
#[must_use]
pub fn summarize(outcomes: &[TrialOutcome]) -> TrialSummary {
    assert!(!outcomes.is_empty(), "no outcomes to summarize");
    let n = outcomes.len();
    let correct = outcomes.iter().filter(|o| o.is_correct()).count();
    let undetected = outcomes
        .iter()
        .filter(|o| matches!(o, TrialOutcome::Undetected { .. }))
        .count();
    let detected = outcomes
        .iter()
        .filter(|o| matches!(o, TrialOutcome::Detected { .. }))
        .count();
    let work: Vec<f64> = outcomes
        .iter()
        .map(|o| o.cost().work_units as f64)
        .collect();
    let latency: Vec<f64> = outcomes
        .iter()
        .map(|o| o.cost().virtual_ns as f64)
        .collect();
    let invocations: Vec<f64> = outcomes
        .iter()
        .map(|o| o.cost().invocations as f64)
        .collect();
    let design: f64 = outcomes.iter().map(|o| o.cost().design_cost).sum::<f64>() / n as f64;
    TrialSummary {
        reliability: wilson_interval(correct, n),
        undetected: wilson_interval(undetected, n),
        detected: wilson_interval(detected, n),
        work: mean_ci(&work),
        latency: mean_ci(&latency),
        invocations: mean_ci(&invocations),
        design_cost: design,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_counts_categories() {
        let summary = Campaign::new(300).run(1, |_seed, i| {
            let cost = Cost::of_invocation(10, 10);
            match i % 3 {
                0 => TrialOutcome::Correct { cost },
                1 => TrialOutcome::Undetected { cost },
                _ => TrialOutcome::Detected { cost },
            }
        });
        assert_eq!(summary.reliability.successes, 100);
        assert_eq!(summary.undetected.successes, 100);
        assert_eq!(summary.detected.successes, 100);
        assert!((summary.work.mean - 10.0).abs() < 1e-9);
        assert!((summary.invocations.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let mut seeds_a = Vec::new();
        let _ = Campaign::new(50).run(9, |seed, _| {
            seeds_a.push(seed);
            TrialOutcome::Correct { cost: Cost::ZERO }
        });
        let mut seeds_b = Vec::new();
        let _ = Campaign::new(50).run(9, |seed, _| {
            seeds_b.push(seed);
            TrialOutcome::Correct { cost: Cost::ZERO }
        });
        assert_eq!(seeds_a, seeds_b);
        let mut dedup = seeds_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds_a.len(), "duplicate trial seeds");
    }

    #[test]
    fn different_campaign_seeds_differ() {
        let mut a = Vec::new();
        let _ = Campaign::new(5).run(1, |seed, _| {
            a.push(seed);
            TrialOutcome::Correct { cost: Cost::ZERO }
        });
        let mut b = Vec::new();
        let _ = Campaign::new(5).run(2, |seed, _| {
            b.push(seed);
            TrialOutcome::Correct { cost: Cost::ZERO }
        });
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = Campaign::new(0);
    }

    /// A seed-driven trial with varying dispositions and costs — enough
    /// structure that any ordering or double-execution bug in the
    /// parallel path would change the summary.
    fn synthetic_trial(seed: u64, i: usize) -> TrialOutcome {
        let cost = Cost::of_invocation((seed % 97) + i as u64, (seed % 31) + 1);
        match seed % 5 {
            0 => TrialOutcome::Undetected { cost },
            1 | 2 => TrialOutcome::Detected { cost },
            _ => TrialOutcome::Correct { cost },
        }
    }

    #[test]
    fn parallel_summary_is_bit_identical_to_serial() {
        let campaign = Campaign::new(257);
        let serial = campaign.run(0xDEAD_BEEF, synthetic_trial);
        for jobs in [1, 2, 8] {
            let parallel = campaign.run_parallel(0xDEAD_BEEF, jobs, synthetic_trial);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_with_one_job_spawns_nothing_but_matches() {
        let campaign = Campaign::new(3);
        assert_eq!(
            campaign.run(42, synthetic_trial),
            campaign.run_parallel(42, 1, synthetic_trial)
        );
    }

    #[test]
    fn traced_parallel_with_disabled_observer_matches_serial_summary() {
        use redundancy_core::obs::NoopObserver;
        let campaign = Campaign::new(64);
        let trial = |ctx: &mut ExecContext, _seed: u64, i: usize| {
            // Consume randomness so the context matters.
            let draw = ctx.rng().next_u64();
            synthetic_trial(draw, i)
        };
        let serial = campaign.run_traced(7, Arc::new(NoopObserver), trial);
        let parallel = campaign.run_traced_parallel(7, 4, Arc::new(NoopObserver), trial);
        assert_eq!(serial, parallel);
    }

    /// A traced trial that opens an inner span and consumes randomness,
    /// so both the event stream and the outcomes depend on scheduling
    /// being handled correctly.
    fn traced_trial(ctx: &mut ExecContext, _seed: u64, i: usize) -> TrialOutcome {
        let span = ctx.obs_begin(|| SpanKind::Scope { name: "work" });
        let draw = ctx.rng().next_u64();
        ctx.obs_end(span, SpanStatus::Ok, Cost::ZERO.snapshot());
        synthetic_trial(draw, i)
    }

    #[test]
    fn traced_parallel_stream_is_bit_identical_to_serial() {
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(97);
        let serial_sink = Arc::new(CollectorObserver::new());
        let serial = campaign.run_traced(11, serial_sink.clone(), traced_trial);
        let serial_events = serial_sink.take();
        assert!(!serial_events.is_empty());
        for jobs in [1, 2, 8] {
            let sink = Arc::new(CollectorObserver::new());
            let parallel = campaign.run_traced_parallel(11, jobs, sink.clone(), traced_trial);
            assert_eq!(serial, parallel, "summary for jobs={jobs}");
            assert_eq!(serial_events, sink.take(), "stream for jobs={jobs}");
        }
    }

    #[test]
    fn streaming_merge_bounds_peak_buffered_shards() {
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(500);
        let sink = Arc::new(CollectorObserver::new());
        let (summary, stats) =
            campaign.run_traced_parallel_stats(13, 8, sink.clone(), traced_trial);
        assert_eq!(summary.reliability.trials, 500);
        assert!(stats.window > 0);
        assert!(
            stats.window < campaign.trials(),
            "window {} must be a real bound below n={}",
            stats.window,
            campaign.trials()
        );
        assert!(
            stats.peak_buffered <= stats.window,
            "peak {} exceeded window {}",
            stats.peak_buffered,
            stats.window
        );
        // And the stream still matches the serial recording.
        let serial_sink = Arc::new(CollectorObserver::new());
        let _ = campaign.run_traced(13, serial_sink.clone(), traced_trial);
        assert_eq!(serial_sink.take(), sink.take());
    }

    #[test]
    fn traced_parallel_splits_into_per_trial_forensics() {
        use crate::forensics::split_trials;
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(40);
        let sink = Arc::new(CollectorObserver::new());
        let _ = campaign.run_traced_parallel(21, 4, sink.clone(), traced_trial);
        let trials = split_trials(&sink.take());
        assert_eq!(trials.len(), 40);
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.index, i as u64);
        }
    }

    #[test]
    fn design_cost_averaged() {
        let summary = Campaign::new(10).run(3, |_, _| TrialOutcome::Correct {
            cost: Cost {
                design_cost: 3.0,
                ..Cost::ZERO
            },
        });
        assert!((summary.design_cost - 3.0).abs() < 1e-9);
    }
}
