//! Monte-Carlo campaigns: run a seeded trial many times, classify and
//! summarize.

use std::hash::Hash;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use redundancy_core::adjudicator::{OutcomeColumns, RowVerdict, VoteRule};
use redundancy_core::context::{CancelToken, ExecContext};
use redundancy_core::cost::Cost;
use redundancy_core::obs::telemetry::{self, Counter, Timer};
use redundancy_core::obs::{
    with_worker_arena, ObsHandle, Observer, ShardPool, SpanKind, SpanStatus, StreamingMerger,
};

use crate::chaos::ChaosPlan;
use crate::checkpoint::{self, CheckpointLog, CheckpointSpec};
use crate::parallel::{chunk_size, parallel_indexed, parallel_indexed_chunked_hooked};
use crate::stats::{mean_ci, wilson_interval, Estimate, Proportion};

/// The classification of one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialOutcome {
    /// The system delivered a correct result.
    Correct {
        /// Cost of the trial.
        cost: Cost,
    },
    /// The system delivered a wrong result *without noticing* — the worst
    /// outcome (undetected failure).
    Undetected {
        /// Cost of the trial.
        cost: Cost,
    },
    /// The system failed but *knew* it failed (fail-stop).
    Detected {
        /// Cost of the trial.
        cost: Cost,
    },
}

impl TrialOutcome {
    /// The flight-recorder counter this disposition bumps.
    fn counter(&self) -> Counter {
        match self {
            TrialOutcome::Correct { .. } => Counter::TrialsCorrect,
            TrialOutcome::Undetected { .. } => Counter::TrialsUndetected,
            TrialOutcome::Detected { .. } => Counter::TrialsDetected,
        }
    }

    /// The cost of the trial.
    #[must_use]
    pub fn cost(&self) -> Cost {
        match self {
            TrialOutcome::Correct { cost }
            | TrialOutcome::Undetected { cost }
            | TrialOutcome::Detected { cost } => *cost,
        }
    }

    /// Whether the trial delivered a correct result.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        matches!(self, TrialOutcome::Correct { .. })
    }

    /// The disposition label used in trace spans (`"correct"`,
    /// `"undetected"` or `"detected"`).
    #[must_use]
    pub fn disposition(&self) -> &'static str {
        match self {
            TrialOutcome::Correct { .. } => "correct",
            TrialOutcome::Undetected { .. } => "undetected",
            TrialOutcome::Detected { .. } => "detected",
        }
    }
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSummary {
    /// Reliability: fraction of correct trials, with Wilson interval.
    pub reliability: Proportion,
    /// Fraction of undetected (silent) failures.
    pub undetected: Proportion,
    /// Fraction of detected (fail-stop) failures.
    pub detected: Proportion,
    /// Mean work units per trial.
    pub work: Estimate,
    /// Mean virtual time per trial.
    pub latency: Estimate,
    /// Mean invocations per trial.
    pub invocations: Estimate,
    /// Total design cost charged across the campaign divided by trials.
    pub design_cost: f64,
}

/// Only every 64th trial is wall-clock timed for the flight recorder:
/// at sub-microsecond trial costs, two `Instant::now()` calls per trial
/// would dominate the telemetry budget, while a 1-in-64 sample still
/// feeds the duration histogram faithfully (a thousand-trial campaign
/// contributes ~16 samples per run, and campaigns repeat).
const TRIAL_SAMPLE_MASK: usize = 63;

/// Starts the sampled per-trial timer (`None` for unsampled trials or
/// while the recorder is off — no clock read either way).
#[inline]
fn trial_timer(i: usize) -> Option<std::time::Instant> {
    if i & TRIAL_SAMPLE_MASK == 0 {
        telemetry::timer_start()
    } else {
        None
    }
}

/// Per-trial flight-recorder bookkeeping, consolidated behind a single
/// gate check: one shard lookup covers the sampled duration and the
/// disposition counter. Recorder off: one relaxed load and a branch.
#[inline]
fn record_trial(timed: Option<std::time::Instant>, outcome: &TrialOutcome) {
    if let Some(shard) = telemetry::active_shard() {
        if let Some(started) = timed {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shard.observe_ns(Timer::TrialNs, ns);
        }
        shard.add(outcome.counter(), 1);
    }
}

/// A seeded Monte-Carlo campaign.
///
/// # Examples
///
/// ```
/// use redundancy_core::cost::Cost;
/// use redundancy_sim::trial::{Campaign, TrialOutcome};
///
/// // A fake system that succeeds on even seeds.
/// let summary = Campaign::new(1000).run(7, |seed, _trial| {
///     if seed % 2 == 0 {
///         TrialOutcome::Correct { cost: Cost::ZERO }
///     } else {
///         TrialOutcome::Detected { cost: Cost::ZERO }
///     }
/// });
/// assert_eq!(summary.reliability.trials, 1000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    trials: usize,
}

impl Campaign {
    /// Creates a campaign of `trials` runs.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    #[must_use]
    pub fn new(trials: usize) -> Self {
        assert!(trials > 0, "a campaign needs at least one trial");
        Self { trials }
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The derived seed of trial `i` under `campaign_seed` (what
    /// [`run`](Self::run) passes to the trial closure).
    #[must_use]
    pub fn trial_seed(campaign_seed: u64, i: usize) -> u64 {
        campaign_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((i as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            ^ 0x94d0_49bb_1331_11eb
    }

    /// Runs the campaign: `trial(seed, index)` is called once per trial
    /// with a distinct derived seed.
    pub fn run<F>(&self, campaign_seed: u64, mut trial: F) -> TrialSummary
    where
        F: FnMut(u64, usize) -> TrialOutcome,
    {
        telemetry::add(Counter::TrialsScheduled, self.trials as u64);
        let mut outcomes = Vec::with_capacity(self.trials);
        for i in 0..self.trials {
            let timed = trial_timer(i);
            let outcome = trial(Self::trial_seed(campaign_seed, i), i);
            record_trial(timed, &outcome);
            outcomes.push(outcome);
        }
        summarize(&outcomes)
    }

    /// Runs the campaign with execution tracing: every trial gets an
    /// [`ExecContext`] seeded exactly as [`run`](Self::run) would seed it
    /// and attached to `observer`, and is wrapped in a
    /// [`SpanKind::Trial`] span whose end status records the disposition.
    ///
    /// All trials share one span-id allocator, so the recorded stream can
    /// be split back into per-trial traces with
    /// [`crate::forensics::split_trials`].
    pub fn run_traced<F>(
        &self,
        campaign_seed: u64,
        observer: Arc<dyn Observer>,
        mut trial: F,
    ) -> TrialSummary
    where
        F: FnMut(&mut ExecContext, u64, usize) -> TrialOutcome,
    {
        telemetry::add(Counter::TrialsScheduled, self.trials as u64);
        let handle = ObsHandle::new(observer);
        let mut outcomes = Vec::with_capacity(self.trials);
        for i in 0..self.trials {
            let seed = Self::trial_seed(campaign_seed, i);
            let timed = trial_timer(i);
            let mut ctx = ExecContext::new(seed).with_obs_handle(handle.clone());
            let span = ctx.obs_begin(|| SpanKind::Trial {
                index: i as u64,
                seed,
            });
            let outcome = trial(&mut ctx, seed, i);
            ctx.obs_end(
                span,
                SpanStatus::Trial {
                    disposition: outcome.disposition(),
                },
                outcome.cost().snapshot(),
            );
            record_trial(timed, &outcome);
            outcomes.push(outcome);
        }
        summarize(&outcomes)
    }

    /// Runs the campaign through the branchless batch adjudication
    /// back-end: trials fill rows of an
    /// [`OutcomeColumns`] chunk (`None` slots are detectable failures),
    /// whole segments of rows are adjudicated at once under `rule` with
    /// the SoA popcount kernels, and `classify` maps each compact
    /// [`RowVerdict`] — with the chunk available to resolve interned
    /// winning outputs — to a [`TrialOutcome`].
    ///
    /// This is the campaign shape the batch path exists for: the same
    /// `arity`-wide vote adjudicated once per trial over thousands of
    /// trials. Columns, verdict buffer and row scratch are reused across
    /// segments, so the steady-state loop allocates only for outputs the
    /// interner has not seen before. `produce` must fill `row` with
    /// exactly `arity` slots and returns the trial's cost.
    ///
    /// Per-trial duration sampling does not apply here — adjudication is
    /// amortized across a segment, so there is no per-trial interval to
    /// time — but disposition counters still feed the flight recorder.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is outside the columns' supported range or
    /// `produce` fills a row with the wrong arity.
    pub fn run_batch_adjudicated<O, P, C>(
        &self,
        campaign_seed: u64,
        rule: VoteRule,
        arity: usize,
        mut produce: P,
        mut classify: C,
    ) -> TrialSummary
    where
        O: Clone + Eq + Hash,
        P: FnMut(u64, usize, &mut Vec<Option<O>>) -> Cost,
        C: FnMut(&RowVerdict, &OutcomeColumns<O>, Cost) -> TrialOutcome,
    {
        /// Trials per packed segment: big enough to amortize the
        /// adjudication pass and keep the interner warm, small enough
        /// that the columns stay cache-resident.
        const BATCH_SEGMENT: usize = 1024;
        telemetry::add(Counter::TrialsScheduled, self.trials as u64);
        let segment = BATCH_SEGMENT.min(self.trials);
        let mut columns: OutcomeColumns<O> = OutcomeColumns::with_row_capacity(arity, segment);
        let mut verdicts: Vec<RowVerdict> = Vec::new();
        let mut row: Vec<Option<O>> = Vec::with_capacity(arity);
        let mut costs: Vec<Cost> = Vec::with_capacity(segment);
        let mut outcomes = Vec::with_capacity(self.trials);
        let mut start = 0usize;
        while start < self.trials {
            let end = (start + BATCH_SEGMENT).min(self.trials);
            columns.clear();
            costs.clear();
            for i in start..end {
                row.clear();
                costs.push(produce(Self::trial_seed(campaign_seed, i), i, &mut row));
                columns.push_row(&row);
            }
            columns.adjudicate_into(rule, &mut verdicts);
            for (verdict, &cost) in verdicts.iter().zip(&costs) {
                let outcome = classify(verdict, &columns, cost);
                record_trial(None, &outcome);
                outcomes.push(outcome);
            }
            start = end;
        }
        summarize(&outcomes)
    }

    /// Runs the campaign with trials sharded across up to `jobs` worker
    /// threads (`std::thread::scope`; no threads at all for `jobs <= 1`).
    ///
    /// Each trial derives its own seed exactly as [`run`](Self::run)
    /// does and outcomes are collected in trial-index order, so the
    /// returned [`TrialSummary`] is **bit-for-bit identical** to the
    /// serial one for any worker count — parallelism changes wall-clock
    /// time, never results. The only difference from [`run`](Self::run)
    /// is the closure bound: workers share it, so it must be `Fn + Sync`
    /// rather than `FnMut`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the trial closure, like [`run`](Self::run).
    pub fn run_parallel<F>(&self, campaign_seed: u64, jobs: usize, trial: F) -> TrialSummary
    where
        F: Fn(u64, usize) -> TrialOutcome + Sync,
    {
        telemetry::add(Counter::TrialsScheduled, self.trials as u64);
        let outcomes = parallel_indexed(jobs, self.trials, |i| {
            let timed = trial_timer(i);
            let outcome = trial(Self::trial_seed(campaign_seed, i), i);
            record_trial(timed, &outcome);
            outcome
        });
        summarize(&outcomes)
    }

    /// Runs a traced campaign with trials sharded across up to `jobs`
    /// worker threads, preserving both the summary *and* the recorded
    /// event stream of the serial [`run_traced`](Self::run_traced).
    ///
    /// Concurrent trials cannot share one span-id allocator without
    /// interleaving their streams in scheduling order, so every trial
    /// records into its worker's pooled
    /// [`CollectorObserver`](redundancy_core::obs::CollectorObserver)
    /// shard through a fresh [`ObsHandle`]. As soon as every earlier
    /// trial has finished, a trial's shard is forwarded to `observer`
    /// with its span ids renumbered into one campaign-wide sequence
    /// ([`StreamingMerger`]) — exactly the ids and record order the
    /// serial shared allocator produces. The stream `observer` sees is
    /// therefore bit-for-bit identical to the serial one, and
    /// [`crate::forensics::split_trials`] applies unchanged.
    ///
    /// Unlike the first generation of this method (which buffered every
    /// shard until the campaign ended), peak buffering is bounded by a
    /// small window of in-flight trials — workers that run too far ahead
    /// of the merge frontier wait for it — so a bounded `observer` (e.g.
    /// a ring buffer) bounds peak memory too, independent of campaign
    /// length. Drained shard allocations are recycled through a
    /// [`ShardPool`], making steady-state trace collection
    /// allocation-free.
    pub fn run_traced_parallel<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        observer: Arc<dyn Observer>,
        trial: F,
    ) -> TrialSummary
    where
        F: Fn(&mut ExecContext, u64, usize) -> TrialOutcome + Sync,
    {
        self.run_traced_parallel_stats(campaign_seed, jobs, observer, trial)
            .0
    }

    /// Like [`run_traced_parallel`](Self::run_traced_parallel), but also
    /// returns the merge statistics (buffering window and high-water
    /// mark), so callers — and the memory-bound tests — can observe that
    /// streaming actually bounded peak shard buffering.
    pub fn run_traced_parallel_stats<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        observer: Arc<dyn Observer>,
        trial: F,
    ) -> (TrialSummary, TracedMergeStats)
    where
        F: Fn(&mut ExecContext, u64, usize) -> TrialOutcome + Sync,
    {
        if !observer.enabled() {
            // A disabled sink records nothing either way; skip the
            // per-trial shards entirely. Contexts are seeded identically,
            // and tracing never perturbs the random stream, so outcomes
            // are unchanged.
            let summary = self.run_parallel(campaign_seed, jobs, |seed, i| {
                trial(&mut ExecContext::new(seed), seed, i)
            });
            return (
                summary,
                TracedMergeStats {
                    window: 0,
                    peak_buffered: 0,
                },
            );
        }
        let (outcomes, stats) =
            self.traced_parallel_segment(campaign_seed, jobs, observer, 0, 0, None, None, trial);
        (summarize(&outcomes), stats)
    }

    /// Runs the campaign like [`run_parallel`](Self::run_parallel),
    /// checkpointing completed trials to `spec`'s file so a killed run
    /// can be restarted with the same arguments and **skip the committed
    /// prefix**: trials are independently seeded by index, so the
    /// resumed summary is bit-identical to an uninterrupted run's.
    ///
    /// Outcomes commit in contiguous batches of
    /// [`CheckpointSpec::interval`] trials; work completed but not yet
    /// flushed when the process dies is re-run on resume (the trade-off
    /// experiment E19 measures). Restarting with a different seed, trial
    /// count, or tracedness is refused
    /// ([`checkpoint::Error::Mismatch`]).
    ///
    /// # Errors
    ///
    /// Returns [`checkpoint::Error`] when the checkpoint file cannot be
    /// read or written, records a committed-trial gap
    /// ([`checkpoint::Error::Corrupt`]), or pins different campaign
    /// parameters.
    pub fn run_parallel_resumable<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        spec: &CheckpointSpec,
        trial: F,
    ) -> Result<TrialSummary, checkpoint::Error>
    where
        F: Fn(u64, usize) -> TrialOutcome + Sync,
    {
        self.run_parallel_resumable_chaos(campaign_seed, jobs, spec, None, trial)
    }

    /// [`run_parallel_resumable`](Self::run_parallel_resumable) with an
    /// optional [`ChaosPlan`] injecting harness faults: worker kills at
    /// trial boundaries and scheduling delays on chunks. (Charge-point
    /// cancellation needs an [`ExecContext`] and therefore only applies
    /// to the traced runner.) A killed trial's outcome is never
    /// recorded, so resuming after a chaos panic converges on the clean
    /// run's summary.
    ///
    /// # Errors
    ///
    /// As [`run_parallel_resumable`](Self::run_parallel_resumable).
    pub fn run_parallel_resumable_chaos<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        spec: &CheckpointSpec,
        chaos: Option<&ChaosPlan>,
        trial: F,
    ) -> Result<TrialSummary, checkpoint::Error>
    where
        F: Fn(u64, usize) -> TrialOutcome + Sync,
    {
        let (log, resumed) = CheckpointLog::open(spec, campaign_seed, self.trials, false)?;
        let start = resumed.outcomes.len();
        let mut outcomes = resumed.outcomes;
        if start < self.trials {
            let remaining = self.trials - start;
            telemetry::add(Counter::TrialsScheduled, remaining as u64);
            let jobs = jobs.clamp(1, remaining);
            let chunk = chunk_size(remaining, jobs);
            let fresh = parallel_indexed_chunked_hooked(
                jobs,
                remaining,
                chunk,
                |c| {
                    if let Some(delay) = chaos.and_then(|plan| plan.chunk_delay(c)) {
                        telemetry::add(Counter::ChaosDelays, 1);
                        std::thread::sleep(delay);
                    }
                },
                |k| {
                    let i = start + k;
                    if let Some(plan) = chaos {
                        plan.before_trial(i);
                    }
                    let timed = trial_timer(i);
                    let outcome = trial(Self::trial_seed(campaign_seed, i), i);
                    if let Some(plan) = chaos {
                        plan.after_trial(i);
                    }
                    // Recorded only once the outcome survives the chaos
                    // hooks: a killed trial is re-run on resume, and
                    // neither its count nor its duration sample may land
                    // twice.
                    record_trial(timed, &outcome);
                    log.record_outcome(i, &outcome);
                    outcome
                },
            );
            outcomes.extend(fresh);
        }
        log.finish()?;
        Ok(summarize(&outcomes))
    }

    /// Runs a traced campaign like
    /// [`run_traced_parallel`](Self::run_traced_parallel), checkpointing
    /// both completed-trial outcomes **and the committed prefix of the
    /// merged event stream** to `spec`'s file. On restart the committed
    /// prefix is replayed into `observer` (which re-assigns global
    /// sequence numbers) and the merge resumes where it stopped, so both
    /// the final [`TrialSummary`] and the stream `observer` sees are
    /// identical to an uninterrupted run's — byte-for-byte once
    /// exported.
    ///
    /// A disabled `observer` falls back to the untraced resumable path;
    /// note the checkpoint file then pins `traced = false` and cannot be
    /// shared with an enabled run ([`checkpoint::Error::Mismatch`]).
    ///
    /// # Errors
    ///
    /// As [`run_parallel_resumable`](Self::run_parallel_resumable).
    pub fn run_traced_parallel_resumable<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        observer: Arc<dyn Observer>,
        spec: &CheckpointSpec,
        trial: F,
    ) -> Result<TrialSummary, checkpoint::Error>
    where
        F: Fn(&mut ExecContext, u64, usize) -> TrialOutcome + Sync,
    {
        self.run_traced_parallel_resumable_chaos(campaign_seed, jobs, observer, spec, None, trial)
    }

    /// [`run_traced_parallel_resumable`](Self::run_traced_parallel_resumable)
    /// with an optional [`ChaosPlan`]: worker kills at trial boundaries,
    /// cooperative cancellation on a scripted fuel-charge check
    /// ([`CancelToken::cancel_after`]), and chunk scheduling delays. A
    /// chaos-cancelled trial panics (payload `"chaos: ..."`) instead of
    /// recording its partial outcome, so the resumed campaign re-runs it
    /// cleanly and still matches the clean run bit-for-bit.
    ///
    /// # Errors
    ///
    /// As [`run_parallel_resumable`](Self::run_parallel_resumable).
    pub fn run_traced_parallel_resumable_chaos<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        observer: Arc<dyn Observer>,
        spec: &CheckpointSpec,
        chaos: Option<&ChaosPlan>,
        trial: F,
    ) -> Result<TrialSummary, checkpoint::Error>
    where
        F: Fn(&mut ExecContext, u64, usize) -> TrialOutcome + Sync,
    {
        if !observer.enabled() {
            // Nothing to trace: run the untraced resumable path, but
            // keep the chaos cancel fuse working by arming each trial's
            // context exactly as the traced path would.
            return self.run_parallel_resumable_chaos(
                campaign_seed,
                jobs,
                spec,
                chaos,
                |seed, i| {
                    let mut ctx = ExecContext::new(seed);
                    if let Some(checks) = chaos.and_then(|plan| plan.charge_fuse(i)) {
                        ctx = ctx.with_cancel_token(CancelToken::cancel_after(checks));
                    }
                    let outcome = trial(&mut ctx, seed, i);
                    if ctx.was_cancelled() {
                        ChaosPlan::cancelled_trial(i);
                    }
                    outcome
                },
            );
        }
        let (log, resumed) = CheckpointLog::open(spec, campaign_seed, self.trials, true)?;
        let log = Arc::new(log);
        let start = resumed.outcomes.len();
        // Replay the committed stream prefix: the sink assigns global
        // sequence numbers at record time, so replay continues the
        // numbering exactly where the interrupted run left off.
        for event in resumed.events {
            observer.record(event);
        }
        let mut outcomes = resumed.outcomes;
        if start < self.trials {
            let (fresh, _stats) = self.traced_parallel_segment(
                campaign_seed,
                jobs,
                observer,
                start,
                resumed.span_offset,
                Some(&log),
                chaos,
                trial,
            );
            outcomes.extend(fresh);
        }
        log.finish()?;
        Ok(summarize(&outcomes))
    }

    /// The traced-parallel engine shared by
    /// [`run_traced_parallel_stats`](Self::run_traced_parallel_stats)
    /// (`start = 0`, no log, no chaos) and the resumable runners: runs
    /// trials `start..trials`, streaming their merged shards into
    /// `observer` with span ids continuing from `span_offset`.
    ///
    /// When a trial panics — a bug in the trial closure or a scripted
    /// chaos fault — the merger is aborted *before* the panic propagates,
    /// releasing workers blocked on the merge window (the panicked trial
    /// will never submit, so they would otherwise wait forever), then
    /// the panic resumes and surfaces from the worker pool as usual.
    #[allow(clippy::too_many_arguments)]
    fn traced_parallel_segment<F>(
        &self,
        campaign_seed: u64,
        jobs: usize,
        observer: Arc<dyn Observer>,
        start: usize,
        span_offset: u64,
        log: Option<&Arc<CheckpointLog>>,
        chaos: Option<&ChaosPlan>,
        trial: F,
    ) -> (Vec<TrialOutcome>, TracedMergeStats)
    where
        F: Fn(&mut ExecContext, u64, usize) -> TrialOutcome + Sync,
    {
        let remaining = self.trials - start;
        telemetry::add(Counter::TrialsScheduled, remaining as u64);
        let jobs = jobs.clamp(1, remaining);
        let chunk = chunk_size(remaining, jobs);
        // Big enough that a full complement of workers each holding one
        // in-flight chunk never stalls; small enough that peak buffering
        // stays O(jobs · chunk), not O(trials). Blocking on the window is
        // deadlock-free: chunks are claimed in ascending index order, so
        // the worker that owns the merge frontier's trial is never the
        // one waiting (see [`StreamingMerger::with_window`]).
        let window = (2 * jobs * chunk).max(16).min(remaining.max(1));
        let shard_pool = Arc::new(ShardPool::new());
        let mut merger = StreamingMerger::new(observer)
            .with_pool(Arc::clone(&shard_pool))
            .with_window(window)
            .with_start(start, span_offset);
        if let Some(log) = log {
            // The tap runs under the merger lock in strict trial order,
            // handing each trial's renumbered slice to the checkpoint.
            let log = Arc::clone(log);
            merger = merger.with_tap(move |i, events| log.record_events(i, events));
        }
        let outcomes = parallel_indexed_chunked_hooked(
            jobs,
            remaining,
            chunk,
            |c| {
                if let Some(delay) = chaos.and_then(|plan| plan.chunk_delay(c)) {
                    telemetry::add(Counter::ChaosDelays, 1);
                    std::thread::sleep(delay);
                }
            },
            |k| {
                let i = start + k;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = chaos {
                        plan.before_trial(i);
                    }
                    let timed = trial_timer(i);
                    let seed = Self::trial_seed(campaign_seed, i);
                    let (outcome, events) = with_worker_arena(|arena| {
                        let shard = arena.collector();
                        shard.install_buffer(shard_pool.check_out());
                        let handle = arena.handle();
                        let mut ctx = ExecContext::new(seed).with_obs_handle(handle);
                        if let Some(checks) = chaos.and_then(|plan| plan.charge_fuse(i)) {
                            ctx = ctx.with_cancel_token(CancelToken::cancel_after(checks));
                        }
                        let span = ctx.obs_begin(|| SpanKind::Trial {
                            index: i as u64,
                            seed,
                        });
                        let outcome = trial(&mut ctx, seed, i);
                        if ctx.was_cancelled() {
                            // Scripted cancellation: discard the partial
                            // outcome so the resumed re-run (clean, no
                            // fuse) is the one that counts.
                            ChaosPlan::cancelled_trial(i);
                        }
                        ctx.obs_end(
                            span,
                            SpanStatus::Trial {
                                disposition: outcome.disposition(),
                            },
                            outcome.cost().snapshot(),
                        );
                        (outcome, shard.take())
                    });
                    if let Some(plan) = chaos {
                        plan.after_trial(i);
                    }
                    // Recorded after the chaos hooks so a killed trial's
                    // count and duration sample never land twice across
                    // its resume re-run; before `submit` so the count
                    // never includes merge stalls.
                    record_trial(timed, &outcome);
                    merger.submit(i, events);
                    if let Some(log) = log {
                        log.record_outcome(i, &outcome);
                    }
                    outcome
                }));
                match result {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        merger.abort();
                        resume_unwind(payload);
                    }
                }
            },
        );
        let stats = TracedMergeStats {
            window,
            peak_buffered: merger.peak_buffered(),
        };
        (outcomes, stats)
    }
}

/// How the streaming merge of a traced parallel campaign behaved; see
/// [`Campaign::run_traced_parallel_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedMergeStats {
    /// The buffering window the merge enforced (0 when tracing was
    /// disabled and no merge ran).
    pub window: usize,
    /// High-water mark of simultaneously buffered trial shards.
    pub peak_buffered: usize,
}

/// Summarizes a slice of trial outcomes.
///
/// # Panics
///
/// Panics if `outcomes` is empty.
#[must_use]
pub fn summarize(outcomes: &[TrialOutcome]) -> TrialSummary {
    assert!(!outcomes.is_empty(), "no outcomes to summarize");
    let n = outcomes.len();
    let correct = outcomes.iter().filter(|o| o.is_correct()).count();
    let undetected = outcomes
        .iter()
        .filter(|o| matches!(o, TrialOutcome::Undetected { .. }))
        .count();
    let detected = outcomes
        .iter()
        .filter(|o| matches!(o, TrialOutcome::Detected { .. }))
        .count();
    let work: Vec<f64> = outcomes
        .iter()
        .map(|o| o.cost().work_units as f64)
        .collect();
    let latency: Vec<f64> = outcomes
        .iter()
        .map(|o| o.cost().virtual_ns as f64)
        .collect();
    let invocations: Vec<f64> = outcomes
        .iter()
        .map(|o| o.cost().invocations as f64)
        .collect();
    let design: f64 = outcomes.iter().map(|o| o.cost().design_cost).sum::<f64>() / n as f64;
    TrialSummary {
        reliability: wilson_interval(correct, n),
        undetected: wilson_interval(undetected, n),
        detected: wilson_interval(detected, n),
        work: mean_ci(&work),
        latency: mean_ci(&latency),
        invocations: mean_ci(&invocations),
        design_cost: design,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_counts_categories() {
        let summary = Campaign::new(300).run(1, |_seed, i| {
            let cost = Cost::of_invocation(10, 10);
            match i % 3 {
                0 => TrialOutcome::Correct { cost },
                1 => TrialOutcome::Undetected { cost },
                _ => TrialOutcome::Detected { cost },
            }
        });
        assert_eq!(summary.reliability.successes, 100);
        assert_eq!(summary.undetected.successes, 100);
        assert_eq!(summary.detected.successes, 100);
        assert!((summary.work.mean - 10.0).abs() < 1e-9);
        assert!((summary.invocations.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let mut seeds_a = Vec::new();
        let _ = Campaign::new(50).run(9, |seed, _| {
            seeds_a.push(seed);
            TrialOutcome::Correct { cost: Cost::ZERO }
        });
        let mut seeds_b = Vec::new();
        let _ = Campaign::new(50).run(9, |seed, _| {
            seeds_b.push(seed);
            TrialOutcome::Correct { cost: Cost::ZERO }
        });
        assert_eq!(seeds_a, seeds_b);
        let mut dedup = seeds_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds_a.len(), "duplicate trial seeds");
    }

    #[test]
    fn different_campaign_seeds_differ() {
        let mut a = Vec::new();
        let _ = Campaign::new(5).run(1, |seed, _| {
            a.push(seed);
            TrialOutcome::Correct { cost: Cost::ZERO }
        });
        let mut b = Vec::new();
        let _ = Campaign::new(5).run(2, |seed, _| {
            b.push(seed);
            TrialOutcome::Correct { cost: Cost::ZERO }
        });
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = Campaign::new(0);
    }

    /// A seed-driven trial with varying dispositions and costs — enough
    /// structure that any ordering or double-execution bug in the
    /// parallel path would change the summary.
    fn synthetic_trial(seed: u64, i: usize) -> TrialOutcome {
        let cost = Cost::of_invocation((seed % 97) + i as u64, (seed % 31) + 1);
        match seed % 5 {
            0 => TrialOutcome::Undetected { cost },
            1 | 2 => TrialOutcome::Detected { cost },
            _ => TrialOutcome::Correct { cost },
        }
    }

    #[test]
    fn parallel_summary_is_bit_identical_to_serial() {
        let campaign = Campaign::new(257);
        let serial = campaign.run(0xDEAD_BEEF, synthetic_trial);
        for jobs in [1, 2, 8] {
            let parallel = campaign.run_parallel(0xDEAD_BEEF, jobs, synthetic_trial);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_with_one_job_spawns_nothing_but_matches() {
        let campaign = Campaign::new(3);
        assert_eq!(
            campaign.run(42, synthetic_trial),
            campaign.run_parallel(42, 1, synthetic_trial)
        );
    }

    #[test]
    fn traced_parallel_with_disabled_observer_matches_serial_summary() {
        use redundancy_core::obs::NoopObserver;
        let campaign = Campaign::new(64);
        let trial = |ctx: &mut ExecContext, _seed: u64, i: usize| {
            // Consume randomness so the context matters.
            let draw = ctx.rng().next_u64();
            synthetic_trial(draw, i)
        };
        let serial = campaign.run_traced(7, Arc::new(NoopObserver), trial);
        let parallel = campaign.run_traced_parallel(7, 4, Arc::new(NoopObserver), trial);
        assert_eq!(serial, parallel);
    }

    /// A traced trial that opens an inner span and consumes randomness,
    /// so both the event stream and the outcomes depend on scheduling
    /// being handled correctly.
    fn traced_trial(ctx: &mut ExecContext, _seed: u64, i: usize) -> TrialOutcome {
        let span = ctx.obs_begin(|| SpanKind::Scope { name: "work" });
        let draw = ctx.rng().next_u64();
        ctx.obs_end(span, SpanStatus::Ok, Cost::ZERO.snapshot());
        synthetic_trial(draw, i)
    }

    #[test]
    fn traced_parallel_stream_is_bit_identical_to_serial() {
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(97);
        let serial_sink = Arc::new(CollectorObserver::new());
        let serial = campaign.run_traced(11, serial_sink.clone(), traced_trial);
        let serial_events = serial_sink.take();
        assert!(!serial_events.is_empty());
        for jobs in [1, 2, 8] {
            let sink = Arc::new(CollectorObserver::new());
            let parallel = campaign.run_traced_parallel(11, jobs, sink.clone(), traced_trial);
            assert_eq!(serial, parallel, "summary for jobs={jobs}");
            assert_eq!(serial_events, sink.take(), "stream for jobs={jobs}");
        }
    }

    #[test]
    fn streaming_merge_bounds_peak_buffered_shards() {
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(500);
        let sink = Arc::new(CollectorObserver::new());
        let (summary, stats) =
            campaign.run_traced_parallel_stats(13, 8, sink.clone(), traced_trial);
        assert_eq!(summary.reliability.trials, 500);
        assert!(stats.window > 0);
        assert!(
            stats.window < campaign.trials(),
            "window {} must be a real bound below n={}",
            stats.window,
            campaign.trials()
        );
        assert!(
            stats.peak_buffered <= stats.window,
            "peak {} exceeded window {}",
            stats.peak_buffered,
            stats.window
        );
        // And the stream still matches the serial recording.
        let serial_sink = Arc::new(CollectorObserver::new());
        let _ = campaign.run_traced(13, serial_sink.clone(), traced_trial);
        assert_eq!(serial_sink.take(), sink.take());
    }

    #[test]
    fn traced_parallel_splits_into_per_trial_forensics() {
        use crate::forensics::split_trials;
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(40);
        let sink = Arc::new(CollectorObserver::new());
        let _ = campaign.run_traced_parallel(21, 4, sink.clone(), traced_trial);
        let trials = split_trials(&sink.take());
        assert_eq!(trials.len(), 40);
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.index, i as u64);
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "redundancy_trial_{}_{}.ckpt",
            tag,
            std::process::id()
        ));
        p
    }

    #[test]
    fn traced_parallel_panic_propagates_without_deadlock() {
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(64);
        let sink = Arc::new(CollectorObserver::new());
        // Without the merger abort, workers that ran ahead of the dead
        // trial would block forever on the merge window here.
        let result = catch_unwind(AssertUnwindSafe(|| {
            campaign.run_traced_parallel(3, 4, sink.clone(), |ctx, seed, i| {
                assert!(i != 13, "trial bug");
                traced_trial(ctx, seed, i)
            })
        }));
        assert!(result.is_err());
        // The pool and a fresh merger keep working afterwards.
        let retry_sink = Arc::new(CollectorObserver::new());
        let retry = campaign.run_traced_parallel(3, 4, retry_sink.clone(), traced_trial);
        let serial_sink = Arc::new(CollectorObserver::new());
        let serial = campaign.run_traced(3, serial_sink.clone(), traced_trial);
        assert_eq!(serial, retry);
        assert_eq!(serial_sink.take(), retry_sink.take());
    }

    #[test]
    fn killed_untraced_campaign_resumes_to_identical_summary() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let campaign = Campaign::new(120);
        let clean = campaign.run_parallel(5, 4, synthetic_trial);
        for jobs in [1usize, 2, 8] {
            let path = temp_path(&format!("untraced_{jobs}"));
            let _ = std::fs::remove_file(&path);
            let spec = CheckpointSpec::new(&path, 8);
            let chaos = ChaosPlan::new(1).kill_before_trial(60);
            let killed = catch_unwind(AssertUnwindSafe(|| {
                campaign.run_parallel_resumable_chaos(5, jobs, &spec, Some(&chaos), synthetic_trial)
            }));
            let payload = killed.expect_err("the chaos kill must fire");
            assert!(ChaosPlan::is_chaos_panic(&*payload));
            // The resumed run (same plan: kill sites are one-shot) skips
            // the committed prefix and still matches the clean summary.
            let reruns = AtomicUsize::new(0);
            let resumed = campaign
                .run_parallel_resumable_chaos(5, jobs, &spec, Some(&chaos), |seed, i| {
                    reruns.fetch_add(1, Ordering::Relaxed);
                    synthetic_trial(seed, i)
                })
                .expect("resume succeeds");
            assert_eq!(clean, resumed, "jobs={jobs}");
            assert!(
                reruns.load(Ordering::Relaxed) < campaign.trials(),
                "jobs={jobs}: resume re-ran every trial"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    /// A traced trial that charges fuel (so chaos cancellation has a
    /// charge point to fire on) and consumes randomness.
    fn charging_trial(ctx: &mut ExecContext, _seed: u64, i: usize) -> TrialOutcome {
        let span = ctx.obs_begin(|| SpanKind::Scope { name: "work" });
        for _ in 0..4 {
            let _ = ctx.charge(1);
        }
        let draw = ctx.rng().next_u64();
        ctx.obs_end(span, SpanStatus::Ok, Cost::ZERO.snapshot());
        synthetic_trial(draw, i)
    }

    #[test]
    fn killed_traced_campaign_resumes_to_identical_stream() {
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(97);
        let clean_sink = Arc::new(CollectorObserver::new());
        let clean = campaign.run_traced(11, clean_sink.clone(), charging_trial);
        let clean_events = clean_sink.take();
        for jobs in [1usize, 2, 8] {
            let path = temp_path(&format!("traced_{jobs}"));
            let _ = std::fs::remove_file(&path);
            let spec = CheckpointSpec::new(&path, 4);
            let chaos = ChaosPlan::new(2)
                .cancel_at_charge(20, 3)
                .kill_after_trial(48);
            // Depending on run-ahead, both faults may fire in one
            // attempt or across two; each kill gets a fresh sink, as a
            // process restart would.
            let mut attempts = 0;
            let (resumed, final_events) = loop {
                attempts += 1;
                assert!(attempts <= 5, "jobs={jobs}: chaos never converged");
                let sink = Arc::new(CollectorObserver::new());
                let run = catch_unwind(AssertUnwindSafe(|| {
                    campaign.run_traced_parallel_resumable_chaos(
                        11,
                        jobs,
                        sink.clone(),
                        &spec,
                        Some(&chaos),
                        charging_trial,
                    )
                }));
                match run {
                    Ok(summary) => break (summary.expect("checkpoint io"), sink.take()),
                    Err(payload) => assert!(ChaosPlan::is_chaos_panic(&*payload)),
                }
            };
            assert!(attempts >= 2, "jobs={jobs}: no attempt was killed");
            assert_eq!(clean, resumed, "summary for jobs={jobs}");
            assert_eq!(clean_events, final_events, "stream for jobs={jobs}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn completed_resumable_campaign_reruns_nothing() {
        use redundancy_core::obs::CollectorObserver;
        let campaign = Campaign::new(30);
        let path = temp_path("complete");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 4);
        let sink = Arc::new(CollectorObserver::new());
        let first = campaign
            .run_traced_parallel_resumable(3, 4, sink.clone(), &spec, charging_trial)
            .expect("first run");
        let first_events = sink.take();
        // Re-running replays everything from the checkpoint: identical
        // summary and stream without executing a single trial.
        let sink = Arc::new(CollectorObserver::new());
        let replayed = campaign
            .run_traced_parallel_resumable(3, 4, sink.clone(), &spec, |_, _, _| {
                unreachable!("all trials are committed")
            })
            .expect("replay run");
        assert_eq!(first, replayed);
        assert_eq!(first_events, sink.take());
        let _ = std::fs::remove_file(&path);
    }

    /// Seed-driven 3-wide outcome row over a small value domain with
    /// failures mixed in — the same shape the scalar reference below
    /// rebuilds as `VariantOutcome`s.
    fn synthetic_row(seed: u64, row: &mut Vec<Option<u64>>) {
        for slot in 0..3u64 {
            let draw = seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .rotate_left(u32::try_from(slot * 21).expect("small"));
            row.push(if draw % 7 == 0 {
                None // detectable failure
            } else {
                Some(draw % 4)
            });
        }
    }

    #[test]
    fn batch_adjudicated_campaign_matches_scalar_voting() {
        use redundancy_core::adjudicator::voting::MajorityVoter;
        use redundancy_core::adjudicator::Adjudicator;
        use redundancy_core::outcome::{VariantFailure, VariantOutcome};

        let campaign = Campaign::new(2500); // spans multiple segments
        let expected = 1u64; // "correct" reference output
        let classify = |accepted: Option<&u64>, cost: Cost| match accepted {
            Some(out) if *out == expected => TrialOutcome::Correct { cost },
            Some(_) => TrialOutcome::Undetected { cost },
            None => TrialOutcome::Detected { cost },
        };

        let batch = campaign.run_batch_adjudicated(
            99,
            VoteRule::Majority,
            3,
            |seed, i, row| {
                synthetic_row(seed, row);
                Cost::of_invocation((seed % 13) + i as u64, 3)
            },
            |verdict, columns, cost| {
                let accepted = match verdict.decision {
                    redundancy_core::adjudicator::RowDecision::Accepted { class, .. } => {
                        Some(columns.value(class))
                    }
                    redundancy_core::adjudicator::RowDecision::Rejected(_) => None,
                };
                classify(accepted, cost)
            },
        );

        let voter = MajorityVoter::new();
        let scalar = campaign.run(99, |seed, i| {
            let mut row = Vec::new();
            synthetic_row(seed, &mut row);
            let outcomes: Vec<VariantOutcome<u64>> = row
                .iter()
                .enumerate()
                .map(|(s, v)| match v {
                    Some(v) => VariantOutcome::ok(format!("v{s}"), *v),
                    None => VariantOutcome::failed(format!("v{s}"), VariantFailure::Timeout),
                })
                .collect();
            let verdict = voter.adjudicate(&outcomes);
            classify(
                verdict.output(),
                Cost::of_invocation((seed % 13) + i as u64, 3),
            )
        });

        assert_eq!(batch, scalar);
    }

    #[test]
    fn design_cost_averaged() {
        let summary = Campaign::new(10).run(3, |_, _| TrialOutcome::Correct {
            cost: Cost {
                design_cost: 3.0,
                ..Cost::ZERO
            },
        });
        assert!((summary.design_cost - 3.0).abs() < 1e-9);
    }
}
