//! Statistical summaries for experiment results.

use std::fmt;

/// A mean with a 95% normal-approximation confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub stddev: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Sample count.
    pub n: usize,
}

impl Estimate {
    /// The interval lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// The interval upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.ci95)
    }
}

/// Computes mean, standard deviation and a 95% CI for `samples`.
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn mean_ci(samples: &[f64]) -> Estimate {
    assert!(!samples.is_empty(), "cannot summarize an empty sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let stddev = var.sqrt();
    let ci95 = 1.96 * stddev / (n as f64).sqrt();
    Estimate {
        mean,
        stddev,
        ci95,
        n,
    }
}

/// A binomial proportion with a Wilson 95% interval — the right summary
/// for success/recovery rates, stable even at 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Successes.
    pub successes: usize,
    /// Trials.
    pub trials: usize,
    /// Point estimate.
    pub rate: f64,
    /// Wilson interval lower bound.
    pub lo: f64,
    /// Wilson interval upper bound.
    pub hi: f64,
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] ({}/{})",
            self.rate, self.lo, self.hi, self.successes, self.trials
        )
    }
}

/// Computes the Wilson score interval at 95% confidence.
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials`.
#[must_use]
pub fn wilson_interval(successes: usize, trials: usize) -> Proportion {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96_f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    Proportion {
        successes,
        trials,
        rate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_of_constant_sample() {
        let e = mean_ci(&[5.0; 10]);
        assert!((e.mean - 5.0).abs() < 1e-12);
        assert!(e.stddev.abs() < 1e-12);
        assert!(e.ci95.abs() < 1e-12);
        assert_eq!(e.n, 10);
        assert!((e.lo() - 5.0).abs() < 1e-12);
        assert!((e.hi() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_ci_known_values() {
        let e = mean_ci(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.mean - 3.0).abs() < 1e-12);
        // var = 2.5, sd ≈ 1.5811
        assert!((e.stddev - 2.5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let e = mean_ci(&[7.0]);
        assert_eq!(e.n, 1);
        assert!(e.stddev.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = mean_ci(&[]);
    }

    #[test]
    fn wilson_interval_contains_point() {
        let p = wilson_interval(30, 100);
        assert!((p.rate - 0.3).abs() < 1e-12);
        assert!(p.lo < 0.3 && 0.3 < p.hi);
        assert!(p.lo > 0.2 && p.hi < 0.41);
    }

    #[test]
    fn wilson_interval_degenerate_ends() {
        let zero = wilson_interval(0, 50);
        assert!((zero.rate).abs() < 1e-12);
        assert!(zero.lo.abs() < 1e-12);
        assert!(zero.hi > 0.0 && zero.hi < 0.12, "hi {}", zero.hi);
        let one = wilson_interval(50, 50);
        assert!((one.rate - 1.0).abs() < 1e-12);
        assert!(one.lo > 0.9);
        assert!((one.hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_narrows_with_n() {
        let small = wilson_interval(5, 10);
        let large = wilson_interval(500, 1000);
        assert!(large.hi - large.lo < small.hi - small.lo);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_zero_trials_panics() {
        let _ = wilson_interval(0, 0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!mean_ci(&[1.0, 2.0]).to_string().is_empty());
        assert!(!wilson_interval(1, 2).to_string().is_empty());
    }
}
