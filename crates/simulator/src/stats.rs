//! Statistical summaries for experiment results.

use std::fmt;

/// Two-sided 95% Student-t critical values for `df = n - 1` in `1..=28`.
///
/// Small Monte-Carlo cells (the per-row replicates of Table 2 are often
/// single digits) need the t distribution: at n = 5 the normal
/// approximation's 1.96 understates the true half-width by almost 30%.
/// From n = 30 on the difference is under 2.5% and the normal z = 1.96 is
/// used instead.
const T_CRIT_95: [f64; 28] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048,
];

/// The two-sided 95% critical value for a sample of size `n`: Student-t
/// for `n < 30`, the normal approximation `z = 1.96` from 30 up.
fn critical_value_95(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0, // no spread is estimable from fewer than two samples
        _ if n < 30 => T_CRIT_95[n - 2],
        _ => 1.96,
    }
}

/// A mean with a 95% confidence interval (Student-t below 30 samples,
/// normal approximation from 30 up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub stddev: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Sample count.
    pub n: usize,
}

impl Estimate {
    /// The interval lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// The interval upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.ci95)
    }
}

/// Computes mean, standard deviation and a 95% CI for `samples`.
///
/// The interval half-width uses the Student-t critical value for samples
/// smaller than 30 (with `n - 1` degrees of freedom) and the normal
/// approximation `z = 1.96` from 30 samples up. A single sample has no
/// estimable spread and reports a zero-width interval.
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn mean_ci(samples: &[f64]) -> Estimate {
    assert!(!samples.is_empty(), "cannot summarize an empty sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let stddev = var.sqrt();
    let ci95 = critical_value_95(n) * stddev / (n as f64).sqrt();
    Estimate {
        mean,
        stddev,
        ci95,
        n,
    }
}

/// A binomial proportion with a Wilson 95% interval — the right summary
/// for success/recovery rates, stable even at 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Successes.
    pub successes: usize,
    /// Trials.
    pub trials: usize,
    /// Point estimate.
    pub rate: f64,
    /// Wilson interval lower bound.
    pub lo: f64,
    /// Wilson interval upper bound.
    pub hi: f64,
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] ({}/{})",
            self.rate, self.lo, self.hi, self.successes, self.trials
        )
    }
}

/// Computes the Wilson score interval at 95% confidence.
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials`.
#[must_use]
pub fn wilson_interval(successes: usize, trials: usize) -> Proportion {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96_f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    Proportion {
        successes,
        trials,
        rate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_of_constant_sample() {
        let e = mean_ci(&[5.0; 10]);
        assert!((e.mean - 5.0).abs() < 1e-12);
        assert!(e.stddev.abs() < 1e-12);
        assert!(e.ci95.abs() < 1e-12);
        assert_eq!(e.n, 10);
        assert!((e.lo() - 5.0).abs() < 1e-12);
        assert!((e.hi() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_ci_known_values() {
        let e = mean_ci(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.mean - 3.0).abs() < 1e-12);
        // var = 2.5, sd ≈ 1.5811
        assert!((e.stddev - 2.5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn small_samples_use_student_t() {
        // n = 5 → df = 4 → t = 2.776, not z = 1.96.
        let e = mean_ci(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let expected = 2.776 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((e.ci95 - expected).abs() < 1e-9, "ci {}", e.ci95);

        // n = 2 → df = 1 → t = 12.706: a two-sample interval is huge.
        let e2 = mean_ci(&[0.0, 1.0]);
        let sd2 = 0.5f64.sqrt();
        let expected2 = 12.706 * sd2 / 2f64.sqrt();
        assert!((e2.ci95 - expected2).abs() < 1e-9, "ci {}", e2.ci95);
    }

    #[test]
    fn large_samples_use_normal_approximation() {
        // n = 30: alternating 0/1 → mean 0.5, sd of ~0.5085.
        let samples: Vec<f64> = (0..30).map(|i| f64::from(i % 2)).collect();
        let e = mean_ci(&samples);
        let expected = 1.96 * e.stddev / 30f64.sqrt();
        assert!((e.ci95 - expected).abs() < 1e-12, "ci {}", e.ci95);
    }

    #[test]
    fn t_interval_is_wider_than_normal_for_same_spread() {
        // The same per-sample spread must yield a *wider* scaled interval
        // at n = 5 than z would give — the bug this pins was using 1.96
        // everywhere.
        let e = mean_ci(&[10.0, 12.0, 14.0, 16.0, 18.0]);
        let z_width = 1.96 * e.stddev / 5f64.sqrt();
        assert!(
            e.ci95 > z_width * 1.4,
            "t width {} vs z {}",
            e.ci95,
            z_width
        );
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let e = mean_ci(&[7.0]);
        assert_eq!(e.n, 1);
        assert!(e.stddev.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = mean_ci(&[]);
    }

    #[test]
    fn wilson_interval_contains_point() {
        let p = wilson_interval(30, 100);
        assert!((p.rate - 0.3).abs() < 1e-12);
        assert!(p.lo < 0.3 && 0.3 < p.hi);
        assert!(p.lo > 0.2 && p.hi < 0.41);
    }

    #[test]
    fn wilson_interval_degenerate_ends() {
        let zero = wilson_interval(0, 50);
        assert!((zero.rate).abs() < 1e-12);
        assert!(zero.lo.abs() < 1e-12);
        assert!(zero.hi > 0.0 && zero.hi < 0.12, "hi {}", zero.hi);
        let one = wilson_interval(50, 50);
        assert!((one.rate - 1.0).abs() < 1e-12);
        assert!(one.lo > 0.9);
        assert!((one.hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_narrows_with_n() {
        let small = wilson_interval(5, 10);
        let large = wilson_interval(500, 1000);
        assert!(large.hi - large.lo < small.hi - small.lo);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_zero_trials_panics() {
        let _ = wilson_interval(0, 0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!mean_ci(&[1.0, 2.0]).to_string().is_empty());
        assert!(!wilson_interval(1, 2).to_string().is_empty());
    }
}
