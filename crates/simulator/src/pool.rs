//! A persistent, lazily-spawned worker pool for parallel regions.
//!
//! The first generation of [`crate::parallel`] spawned a fresh
//! `std::thread::scope` per campaign, which put thread creation and join
//! inside every measurement: at sub-microsecond trial costs the spawn
//! overhead dominated the work. [`WorkerPool`] amortizes that away —
//! worker threads are spawned once, on first demand, and then reused
//! across campaigns, experiment rows, and criterion iterations for the
//! life of the process.
//!
//! The pool executes **regions**: a region is one shared `Fn() + Sync`
//! closure that every participant (the calling thread plus up to
//! `helpers` pool workers) runs exactly once. The closure typically
//! claims chunks of work from a shared atomic cursor until none remain,
//! so a region finishes when all participants have drained the cursor.
//! [`WorkerPool::run_region`] blocks until every participant has
//! returned, which is what makes it sound to hand the pool a closure
//! borrowing the caller's stack.
//!
//! Panic handling: a panicking participant does not poison the pool.
//! Worker panics are caught, the first payload is kept, and
//! [`WorkerPool::run_region`] re-raises it on the calling thread after
//! every participant has finished (a panic on the calling thread also
//! waits for the helpers before unwinding, so borrowed data stays valid
//! for as long as any worker can touch it).

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use redundancy_core::obs::telemetry::{self, Counter};

/// Upper bound on pool threads: beyond this, queued region tickets are
/// drained by existing workers (and by the caller, which always helps
/// while waiting), so correctness never depends on reaching the cap.
const MAX_POOL_THREADS: usize = 256;

/// How long a waiting caller sleeps between checks for nested-region
/// work it could help with. Plain (non-nested) regions never hit this
/// timeout: finishing helpers notify the region's condvar directly.
const HELP_POLL: Duration = Duration::from_millis(1);

/// One parallel region: the shared closure plus completion tracking.
///
/// `work` is the caller's closure with its lifetime erased to `'static`;
/// the erasure is sound because [`WorkerPool::run_region`] does not
/// return (or unwind) until `remaining` reaches zero, i.e. until no
/// worker can touch the closure again.
struct Region {
    work: &'static (dyn Fn() + Sync),
    state: Mutex<RegionState>,
    finished: Condvar,
}

struct RegionState {
    /// Helper invocations of `work` still outstanding.
    remaining: usize,
    /// First panic payload raised by a helper, if any.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Panics beyond the kept one, counted rather than stored: several
    /// workers hitting the same bug in one region is a different
    /// diagnosis than one worker hitting it, and the count must not be
    /// silently dropped with the payloads.
    suppressed: usize,
}

impl Region {
    /// Runs one participant's share: invoke the closure, record a panic,
    /// and signal completion.
    fn run_ticket(self: &Arc<Self>) {
        let result = panic::catch_unwind(AssertUnwindSafe(|| (self.work)()));
        let mut state = self.state.lock().expect("region lock never poisoned");
        if let Err(payload) = result {
            if state.panic.is_some() {
                state.suppressed += 1;
                telemetry::add(Counter::PoolPanicsSuppressed, 1);
            } else {
                state.panic = Some(payload);
                telemetry::add(Counter::PoolPanicsCaught, 1);
            }
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            self.finished.notify_all();
        }
    }
}

/// Re-raises `payload`, annotating string payloads with how many
/// further panics the region swallowed. Non-string payloads are
/// re-raised untouched — losing the count beats losing the payload.
fn resume_with_suppressed(payload: Box<dyn std::any::Any + Send>, suppressed: usize) -> ! {
    if suppressed > 0 {
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        if let Some(message) = message {
            let plural = if suppressed == 1 { "" } else { "s" };
            panic::resume_unwind(Box::new(format!(
                "{message} (and {suppressed} more worker panic{plural} suppressed in this region)"
            )));
        }
    }
    panic::resume_unwind(payload);
}

struct PoolInner {
    /// Pending helper invocations, FIFO across regions.
    queue: VecDeque<Arc<Region>>,
    /// Worker threads spawned so far.
    spawned: usize,
}

struct Shared {
    inner: Mutex<PoolInner>,
    work_ready: Condvar,
}

/// A persistent pool of worker threads executing parallel regions.
///
/// Most callers want the process-wide [`WorkerPool::global`] instance —
/// that is what [`crate::parallel_indexed`] and friends use, so every
/// campaign, experiment row and bench iteration shares one set of
/// threads. Independent pools (e.g. for isolation in tests) can be
/// created with [`WorkerPool::new`].
pub struct WorkerPool {
    shared: Arc<Shared>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; threads are spawned lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(Shared {
                inner: Mutex::new(PoolInner {
                    queue: VecDeque::new(),
                    spawned: 0,
                }),
                work_ready: Condvar::new(),
            }),
        }
    }

    /// The process-wide pool.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Number of worker threads spawned so far (they persist once
    /// spawned; this never decreases).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("pool lock never poisoned")
            .spawned
    }

    /// Runs `work` on the calling thread and on up to `helpers` pool
    /// workers concurrently, returning once **every** participant has
    /// returned from the closure.
    ///
    /// The closure is shared, so it must coordinate its own work split —
    /// typically by claiming chunk indices from an atomic cursor. With
    /// `helpers == 0` this is exactly `work()` inline.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any participant (after all participants
    /// have finished). A panicking region does not poison the pool.
    pub fn run_region(&self, helpers: usize, work: &(dyn Fn() + Sync)) {
        telemetry::add(Counter::PoolRegions, 1);
        if helpers == 0 {
            work();
            return;
        }
        // SAFETY: `region` holds this borrow only until `remaining`
        // drops to zero, and we do not return or unwind past this frame
        // before waiting for that (see below), so the closure outlives
        // every use despite the erased lifetime.
        let work_static: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work) };
        let region = Arc::new(Region {
            work: work_static,
            state: Mutex::new(RegionState {
                remaining: helpers,
                panic: None,
                suppressed: 0,
            }),
            finished: Condvar::new(),
        });
        {
            let mut inner = self.shared.inner.lock().expect("pool lock never poisoned");
            for _ in 0..helpers {
                inner.queue.push_back(Arc::clone(&region));
            }
            // Lazily grow the pool toward the queued demand. Capped:
            // queued tickets beyond the cap are drained by existing
            // workers and by the waiting caller.
            let want = inner.queue.len().min(MAX_POOL_THREADS);
            while inner.spawned < want {
                inner.spawned += 1;
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("redundancy-pool-{}", inner.spawned))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawn");
            }
            self.shared.work_ready.notify_all();
        }
        // Participate. A panic here must still wait for the helpers
        // before unwinding (they may still hold the borrow).
        let caller_result = panic::catch_unwind(AssertUnwindSafe(|| (region.work)()));
        self.wait_region(&region);
        if let Err(payload) = caller_result {
            // The caller's own panic wins; helper payloads are dropped
            // but still counted.
            let suppressed = {
                let state = region.state.lock().expect("region lock never poisoned");
                state.suppressed + usize::from(state.panic.is_some())
            };
            resume_with_suppressed(payload, suppressed);
        }
        let (helper_panic, suppressed) = {
            let mut state = region.state.lock().expect("region lock never poisoned");
            (state.panic.take(), state.suppressed)
        };
        if let Some(payload) = helper_panic {
            resume_with_suppressed(payload, suppressed);
        }
    }

    /// Blocks until `region` has no outstanding helper invocations,
    /// draining other queued tickets while waiting (so nested regions
    /// submitted from inside a region cannot deadlock the pool).
    fn wait_region(&self, region: &Arc<Region>) {
        loop {
            let ticket = self
                .shared
                .inner
                .lock()
                .expect("pool lock never poisoned")
                .queue
                .pop_front();
            if let Some(other) = ticket {
                other.run_ticket();
                continue;
            }
            let state = region.state.lock().expect("region lock never poisoned");
            if state.remaining == 0 {
                return;
            }
            // Wake on region completion; the timeout re-checks the queue
            // for nested-region tickets we could help with.
            let (state, _) = region
                .finished
                .wait_timeout(state, HELP_POLL)
                .expect("region lock never poisoned");
            if state.remaining == 0 {
                return;
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Idle time is measured per acquisition: everything between
        // finishing one ticket and picking up the next counts as parked.
        // (Recorded only once a ticket arrives, so a worker currently
        // blocked shows up in the *next* snapshot — good enough for a
        // utilization gauge, and it keeps the wait loop clock-free when
        // telemetry is off.)
        let idle_since = telemetry::timer_start();
        let region = {
            let mut inner = shared.inner.lock().expect("pool lock never poisoned");
            loop {
                if let Some(region) = inner.queue.pop_front() {
                    break region;
                }
                inner = shared
                    .work_ready
                    .wait(inner)
                    .expect("pool lock never poisoned");
            }
        };
        if let Some(started) = idle_since {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            telemetry::add(Counter::WorkerIdleNs, ns);
        }
        region.run_ticket();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn region_runs_on_caller_and_helpers() {
        let pool = WorkerPool::new();
        let invocations = AtomicUsize::new(0);
        pool.run_region(3, &|| {
            invocations.fetch_add(1, Ordering::Relaxed);
        });
        // Caller + 3 helpers, each exactly once.
        assert_eq!(invocations.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_helpers_runs_inline_without_threads() {
        let pool = WorkerPool::new();
        let invocations = AtomicUsize::new(0);
        pool.run_region(0, &|| {
            invocations.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(invocations.load(Ordering::Relaxed), 1);
        assert_eq!(pool.threads(), 0);
    }

    #[test]
    fn threads_are_reused_across_regions() {
        let pool = WorkerPool::new();
        for _ in 0..10 {
            let sum = AtomicUsize::new(0);
            let cursor = AtomicUsize::new(0);
            pool.run_region(2, &|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 100 {
                    break;
                }
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950);
        }
        assert!(
            pool.threads() <= 2,
            "pool spawned {} threads for 2 helpers",
            pool.threads()
        );
    }

    #[test]
    fn helper_panic_propagates_after_region_completes() {
        let pool = WorkerPool::new();
        let cursor = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(2, &|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 50 {
                    break;
                }
                assert!(i != 25, "boom at 25");
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload is a string");
        assert!(message.contains("boom at 25"), "got: {message}");
        // The pool survives the panic and keeps working.
        let ran = AtomicUsize::new(0);
        pool.run_region(2, &|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn concurrent_panics_are_counted_not_silently_dropped() {
        let pool = WorkerPool::new();
        // Every participant (caller + 2 helpers) reaches the barrier,
        // then panics: exactly three panics, two of them suppressed.
        let barrier = std::sync::Barrier::new(3);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(2, &|| {
                barrier.wait();
                panic!("boom in region");
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("annotated payload is a String");
        assert!(message.contains("boom in region"), "got: {message}");
        assert!(
            message.contains("2 more worker panics suppressed"),
            "suppressed count missing: {message}"
        );
        // The pool survives a fully panicked region.
        let ran = AtomicUsize::new(0);
        pool.run_region(2, &|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn single_panic_payload_is_re_raised_untouched() {
        let pool = WorkerPool::new();
        let cursor = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(2, &|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 30 {
                    break;
                }
                assert!(i != 15, "lone failure");
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload is a string");
        assert!(message.contains("lone failure"), "got: {message}");
        assert!(
            !message.contains("suppressed"),
            "no annotation without a second panic: {message}"
        );
    }

    #[test]
    fn nested_regions_complete() {
        let pool = WorkerPool::global();
        let outer_cursor = AtomicUsize::new(0);
        let total = AtomicUsize::new(0);
        pool.run_region(2, &|| loop {
            let i = outer_cursor.fetch_add(1, Ordering::Relaxed);
            if i >= 4 {
                break;
            }
            // Each outer item opens its own inner region.
            let inner_cursor = AtomicUsize::new(0);
            pool.run_region(2, &|| loop {
                let j = inner_cursor.fetch_add(1, Ordering::Relaxed);
                if j >= 10 {
                    break;
                }
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a: *const WorkerPool = WorkerPool::global();
        let b: *const WorkerPool = WorkerPool::global();
        assert_eq!(a, b);
    }
}
