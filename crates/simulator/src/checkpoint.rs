//! Harness-level checkpoint/recovery for Monte-Carlo campaigns.
//!
//! The paper's checkpoint-recovery row (Table 2) is *simulated* by the
//! technique layer; this module dogfoods the same idea into the campaign
//! engine itself, following the crash-only recipe: a campaign
//! periodically commits its completed-trial outcomes (and, for traced
//! runs, the merged event-stream prefix) to an append-only JSONL file,
//! and [`Campaign::run_parallel_resumable`] /
//! [`Campaign::run_traced_parallel_resumable`] skip the committed prefix
//! on restart. Because trials are independently seeded by index and
//! costs round-trip bit-exactly (`u64` fields as decimal, `design_cost`
//! via [`f64::to_bits`]), a killed-and-resumed campaign produces a
//! **bit-identical [`TrialSummary`]** — and a byte-identical traced
//! stream — versus an uninterrupted run.
//!
//! ## File format
//!
//! One JSON object per line, append-only:
//!
//! - a header (`{"kind":"header",...}`) pinning schema version,
//!   campaign seed, trial count and whether the run is traced — resuming
//!   with different parameters is refused ([`Error::Mismatch`]);
//! - for traced runs, raw event lines (exactly
//!   [`redundancy_obs::event_to_json`] output) carrying trial `i`'s
//!   slice of the merged stream, renumbered into campaign-wide span ids;
//! - an outcome line (`{"kind":"trial",...}`) per committed trial, in
//!   index order, closing that trial's group.
//!
//! ## Commit discipline
//!
//! Completed trials are buffered in memory and flushed to the file in
//! contiguous batches of [`CheckpointSpec::interval`] trials, one
//! `write` per batch. Nothing is flushed on drop: if the process (or an
//! injected chaos panic, see [`crate::chaos`]) kills the campaign, the
//! un-flushed tail is deliberately lost — that is exactly the
//! checkpoint-interval/work-lost trade-off experiment E19 measures. A
//! crash can also tear the final batch mid-line; the loader keeps the
//! longest valid prefix ending in an outcome line and truncates the rest
//! before appending.
//!
//! [`Campaign::run_parallel_resumable`]: crate::trial::Campaign::run_parallel_resumable
//! [`Campaign::run_traced_parallel_resumable`]: crate::trial::Campaign::run_traced_parallel_resumable
//! [`TrialSummary`]: crate::trial::TrialSummary

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use redundancy_core::cost::Cost;
use redundancy_core::obs::telemetry::{self, Counter, Timer};
use redundancy_core::obs::{event_from_json, event_to_json, Event, EventKind};

use crate::trial::TrialOutcome;

/// Schema version written into (and required of) the header line.
const VERSION: u64 = 1;

/// Where and how often a resumable campaign checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    path: PathBuf,
    interval: usize,
}

impl CheckpointSpec {
    /// Checkpoints to `path` every `interval` completed trials
    /// (`interval` is clamped to at least 1).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, interval: usize) -> Self {
        CheckpointSpec {
            path: path.into(),
            interval: interval.max(1),
        }
    }

    /// The checkpoint file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Trials per commit batch.
    #[must_use]
    pub fn interval(&self) -> usize {
        self.interval
    }
}

/// Why a resumable campaign could not use its checkpoint file.
#[derive(Debug)]
pub enum Error {
    /// The file could not be read, written or truncated.
    Io(std::io::Error),
    /// A committed line is structurally invalid in a way tearing cannot
    /// explain (e.g. outcome indices out of order): the file was
    /// corrupted or written by something else.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The file belongs to a different campaign (seed, trial count,
    /// traced flag or schema version differ).
    Mismatch {
        /// Which parameter differed.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(err) => write!(f, "checkpoint i/o: {err}"),
            Error::Corrupt { line, detail } => {
                write!(f, "checkpoint corrupt at line {line}: {detail}")
            }
            Error::Mismatch { detail } => {
                write!(f, "checkpoint belongs to a different campaign: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err)
    }
}

/// What a checkpoint file contributed on open: the committed prefix a
/// resumed campaign must not re-run.
#[derive(Debug, Default)]
pub struct Resumed {
    /// Outcomes of trials `0..outcomes.len()`, in index order.
    pub outcomes: Vec<TrialOutcome>,
    /// The committed prefix of the merged event stream (traced runs;
    /// span ids campaign-wide, `seq` shard-local — sinks reassign global
    /// sequence numbers at record time).
    pub events: Vec<Event>,
    /// Span ids the replayed prefix consumed
    /// (for [`StreamingMerger::with_start`]).
    ///
    /// [`StreamingMerger::with_start`]: redundancy_obs::StreamingMerger::with_start
    pub span_offset: u64,
}

/// One trial's not-yet-flushed contribution.
#[derive(Debug, Default)]
struct PendingTrial {
    /// Serialized event lines (traced runs), filled by the merger tap.
    events: Option<String>,
    /// Serialized outcome line.
    outcome: Option<String>,
}

impl PendingTrial {
    /// Whether both halves have arrived (events are only required when
    /// the log is traced).
    fn ready(&self, traced: bool) -> bool {
        self.outcome.is_some() && (!traced || self.events.is_some())
    }
}

#[derive(Debug)]
struct LogState {
    /// Trials durably flushed (a contiguous prefix `0..committed`).
    committed: usize,
    /// Completed trials waiting for the commit frontier or a full batch.
    pending: BTreeMap<usize, PendingTrial>,
    /// First write failure; later records become no-ops and
    /// [`CheckpointLog::finish`] reports it.
    error: Option<std::io::Error>,
}

/// The committer behind a resumable campaign: buffers completed trials
/// and flushes contiguous, interval-sized batches to the checkpoint
/// file. Shared by worker threads (interior mutability); see the module
/// docs for the commit discipline.
#[derive(Debug)]
pub struct CheckpointLog {
    file: Mutex<File>,
    traced: bool,
    interval: usize,
    state: Mutex<LogState>,
}

impl CheckpointLog {
    /// Opens (or creates) the checkpoint file for this campaign,
    /// returning the committer and whatever prefix a previous run
    /// committed. A fresh file gets its header written and flushed
    /// immediately; an existing file is validated against the campaign
    /// parameters and truncated to its longest valid prefix.
    pub fn open(
        spec: &CheckpointSpec,
        campaign_seed: u64,
        trials: usize,
        traced: bool,
    ) -> Result<(CheckpointLog, Resumed), Error> {
        let existing = match std::fs::read(spec.path()) {
            Ok(bytes) => Some(bytes),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => None,
            Err(err) => return Err(err.into()),
        };
        let (resumed, valid_bytes, write_header) = match existing {
            Some(bytes) if !bytes.is_empty() => {
                let (resumed, valid) = scan(&bytes, campaign_seed, trials, traced)?;
                // A torn header commits nothing: start the file over.
                let torn_header = valid == 0;
                (resumed, valid, torn_header)
            }
            _ => (Resumed::default(), 0, true),
        };
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(spec.path())?;
        file.set_len(valid_bytes)?;
        file.seek(SeekFrom::End(0))?;
        if write_header {
            let header = format!(
                "{{\"kind\":\"header\",\"v\":{VERSION},\"campaign_seed\":{campaign_seed},\
                 \"trials\":{trials},\"traced\":{traced}}}\n"
            );
            file.write_all(header.as_bytes())?;
            file.flush()?;
        }
        let committed = resumed.outcomes.len();
        Ok((
            CheckpointLog {
                file: Mutex::new(file),
                traced,
                interval: spec.interval(),
                state: Mutex::new(LogState {
                    committed,
                    pending: BTreeMap::new(),
                    error: None,
                }),
            },
            resumed,
        ))
    }

    /// Trials durably committed so far (contiguous from 0).
    #[must_use]
    pub fn committed(&self) -> usize {
        self.state.lock().expect("checkpoint lock").committed
    }

    /// Records trial `index`'s slice of the merged event stream
    /// (installed as the [`StreamingMerger`] tap by the traced runner).
    ///
    /// [`StreamingMerger`]: redundancy_obs::StreamingMerger
    pub fn record_events(&self, index: usize, events: &[Event]) {
        let mut lines = String::new();
        for event in events {
            lines.push_str(&event_to_json(event));
            lines.push('\n');
        }
        let mut state = self.state.lock().expect("checkpoint lock");
        if index < state.committed {
            return; // replayed trial, already durable
        }
        state.pending.entry(index).or_default().events = Some(lines);
        self.flush_ready(&mut state, self.interval);
    }

    /// Records trial `index`'s outcome; flushes a batch when `interval`
    /// contiguous trials beyond the committed frontier are complete.
    pub fn record_outcome(&self, index: usize, outcome: &TrialOutcome) {
        let cost = outcome.cost();
        let mut line = String::with_capacity(96);
        let _ = writeln!(
            line,
            "{{\"kind\":\"trial\",\"index\":{index},\"disposition\":\"{}\",\
             \"work_units\":{},\"virtual_ns\":{},\"invocations\":{},\"design_cost_bits\":{}}}",
            outcome.disposition(),
            cost.work_units,
            cost.virtual_ns,
            cost.invocations,
            cost.design_cost.to_bits()
        );
        let mut state = self.state.lock().expect("checkpoint lock");
        if index < state.committed {
            return;
        }
        state.pending.entry(index).or_default().outcome = Some(line);
        self.flush_ready(&mut state, self.interval);
    }

    /// Flushes every batch of at least `batch` ready trials contiguous
    /// with the committed frontier. One write per call — tearing only
    /// ever hits the file's tail.
    fn flush_ready(&self, state: &mut LogState, batch: usize) {
        if state.error.is_some() {
            return;
        }
        let mut ready = 0;
        while state
            .pending
            .get(&(state.committed + ready))
            .is_some_and(|t| t.ready(self.traced))
        {
            ready += 1;
        }
        if ready < batch.max(1) {
            return;
        }
        let mut out = String::new();
        for i in state.committed..state.committed + ready {
            let trial = state.pending.remove(&i).expect("counted above");
            if let Some(events) = trial.events {
                out.push_str(&events);
            }
            out.push_str(&trial.outcome.expect("ready trials have outcomes"));
        }
        let mut file = self.file.lock().expect("checkpoint file lock");
        let commit_timer = telemetry::timer_start();
        let result = file.write_all(out.as_bytes()).and_then(|()| file.flush());
        telemetry::timer_stop(Timer::CheckpointCommitNs, commit_timer);
        match result {
            Ok(()) => {
                state.committed += ready;
                telemetry::add(Counter::CheckpointCommits, 1);
                telemetry::add(Counter::CheckpointTrialsCommitted, ready as u64);
            }
            Err(err) => state.error = Some(err),
        }
    }

    /// Flushes the remaining complete tail (any batch size) and reports
    /// the first write error, if one occurred. Returns the total trials
    /// committed.
    pub fn finish(&self) -> Result<usize, Error> {
        let mut state = self.state.lock().expect("checkpoint lock");
        self.flush_ready(&mut state, 1);
        match state.error.take() {
            Some(err) => Err(err.into()),
            None => Ok(state.committed),
        }
    }
}

/// Scans a checkpoint file's bytes, returning the committed prefix and
/// the byte length of the longest valid prefix ending in an outcome line
/// (0 when even the header is unusable — the caller starts the file
/// over). Header/parameter conflicts and impossible line sequences are
/// hard errors; a torn or garbled tail is silently dropped.
fn scan(
    bytes: &[u8],
    campaign_seed: u64,
    trials: usize,
    traced: bool,
) -> Result<(Resumed, u64), Error> {
    let mut resumed = Resumed::default();
    let mut staged: Vec<Event> = Vec::new();
    let mut valid_bytes = 0u64;
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut saw_header = false;
    while offset < bytes.len() {
        let end = match bytes[offset..].iter().position(|&b| b == b'\n') {
            Some(pos) => offset + pos,
            None => break, // no newline: torn tail
        };
        line_no += 1;
        let Ok(line) = std::str::from_utf8(&bytes[offset..end]) else {
            break; // torn mid-character
        };
        if !saw_header {
            match parse_header(line) {
                Some(header) => {
                    header.check(campaign_seed, trials, traced)?;
                    saw_header = true;
                    valid_bytes = (end + 1) as u64;
                }
                // An unreadable first line means the header write itself
                // tore: nothing was committed.
                None => return Ok((Resumed::default(), 0)),
            }
        } else if line.starts_with("{\"kind\":\"trial\"") {
            let Some((index, outcome)) = parse_outcome(line) else {
                break; // torn tail
            };
            if index != resumed.outcomes.len() {
                return Err(Error::Corrupt {
                    line: line_no,
                    detail: format!(
                        "outcome index {index} where {} was expected",
                        resumed.outcomes.len()
                    ),
                });
            }
            if index >= trials {
                return Err(Error::Corrupt {
                    line: line_no,
                    detail: format!("outcome index {index} beyond campaign of {trials}"),
                });
            }
            resumed.outcomes.push(outcome);
            resumed.events.append(&mut staged);
            valid_bytes = (end + 1) as u64;
        } else {
            match event_from_json(line) {
                Ok(event) => staged.push(event),
                Err(_) => break, // torn tail
            }
        }
        offset = end + 1;
    }
    // Events staged after the last outcome line belong to an
    // uncommitted batch; the truncation at `valid_bytes` drops them.
    resumed.span_offset = resumed
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SpanStart { .. }))
        .count() as u64;
    Ok((resumed, valid_bytes))
}

struct Header {
    version: u64,
    campaign_seed: u64,
    trials: u64,
    traced: bool,
}

impl Header {
    fn check(&self, campaign_seed: u64, trials: usize, traced: bool) -> Result<(), Error> {
        let mismatch = |detail: String| Err(Error::Mismatch { detail });
        if self.version != VERSION {
            return mismatch(format!(
                "schema v{} (this build writes v{VERSION})",
                self.version
            ));
        }
        if self.campaign_seed != campaign_seed {
            return mismatch(format!(
                "campaign seed {} (resuming with {campaign_seed})",
                self.campaign_seed
            ));
        }
        if self.trials != trials as u64 {
            return mismatch(format!("{} trials (resuming with {trials})", self.trials));
        }
        if self.traced != traced {
            return mismatch(format!(
                "traced={} (resuming with traced={traced})",
                self.traced
            ));
        }
        Ok(())
    }
}

/// Extracts `"key":<digits>` from a line this module itself wrote (keys
/// are fixed and values unescaped, so plain scanning is exact).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: &str = &line[start..];
    let end = digits
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(digits.len());
    digits[..end].parse().ok()
}

/// Extracts `"key":"<label>"` (labels are fixed identifiers, never
/// escaped).
fn field_label<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

fn parse_header(line: &str) -> Option<Header> {
    if !line.starts_with("{\"kind\":\"header\"") || !line.ends_with('}') {
        return None;
    }
    let traced = if line.contains("\"traced\":true") {
        true
    } else if line.contains("\"traced\":false") {
        false
    } else {
        return None;
    };
    Some(Header {
        version: field_u64(line, "v")?,
        campaign_seed: field_u64(line, "campaign_seed")?,
        trials: field_u64(line, "trials")?,
        traced,
    })
}

fn parse_outcome(line: &str) -> Option<(usize, TrialOutcome)> {
    if !line.ends_with('}') {
        return None;
    }
    let index = usize::try_from(field_u64(line, "index")?).ok()?;
    let cost = Cost {
        work_units: field_u64(line, "work_units")?,
        virtual_ns: field_u64(line, "virtual_ns")?,
        invocations: field_u64(line, "invocations")?,
        design_cost: f64::from_bits(field_u64(line, "design_cost_bits")?),
    };
    let outcome = match field_label(line, "disposition")? {
        "correct" => TrialOutcome::Correct { cost },
        "undetected" => TrialOutcome::Undetected { cost },
        "detected" => TrialOutcome::Detected { cost },
        _ => return None,
    };
    Some((index, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("redundancy_ckpt_{name}_{}", std::process::id()));
        path
    }

    fn outcome(i: usize) -> TrialOutcome {
        let cost = Cost {
            work_units: 10 + i as u64,
            virtual_ns: 100 + i as u64,
            invocations: 1,
            design_cost: 0.1 * i as f64, // exercises non-trivial f64 bits
        };
        match i % 3 {
            0 => TrialOutcome::Correct { cost },
            1 => TrialOutcome::Detected { cost },
            _ => TrialOutcome::Undetected { cost },
        }
    }

    #[test]
    fn fresh_log_commits_in_interval_batches() {
        let path = temp_path("batches");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 4);
        let (log, resumed) = CheckpointLog::open(&spec, 7, 10, false).unwrap();
        assert!(resumed.outcomes.is_empty());

        for i in 0..3 {
            log.record_outcome(i, &outcome(i));
        }
        assert_eq!(log.committed(), 0, "3 < interval: nothing durable yet");
        log.record_outcome(3, &outcome(3));
        assert_eq!(log.committed(), 4, "4th trial completes the batch");
        for i in 4..10 {
            log.record_outcome(i, &outcome(i));
        }
        assert_eq!(log.committed(), 8, "trailing 2 wait for finish");
        assert_eq!(log.finish().unwrap(), 10);

        // Reopening resumes the full campaign, outcomes bit-identical.
        let (_log, resumed) = CheckpointLog::open(&spec, 7, 10, false).unwrap();
        let expected: Vec<TrialOutcome> = (0..10).map(outcome).collect();
        assert_eq!(resumed.outcomes, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_order_completion_commits_contiguously() {
        let path = temp_path("ooo");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 2);
        let (log, _) = CheckpointLog::open(&spec, 1, 6, false).unwrap();
        log.record_outcome(3, &outcome(3));
        log.record_outcome(1, &outcome(1));
        assert_eq!(log.committed(), 0, "gap at 0 blocks the frontier");
        log.record_outcome(0, &outcome(0));
        assert_eq!(log.committed(), 2, "0..2 contiguous and >= interval");
        log.record_outcome(2, &outcome(2));
        assert_eq!(log.committed(), 4);
        assert_eq!(log.finish().unwrap(), 4, "5 never completed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_resumed_past() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 2);
        let (log, _) = CheckpointLog::open(&spec, 5, 8, false).unwrap();
        for i in 0..4 {
            log.record_outcome(i, &outcome(i));
        }
        log.finish().unwrap();
        // Simulate a crash tearing the next batch mid-line.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"kind\":\"trial\",\"index\":4,\"dispo")
            .unwrap();
        drop(file);

        let (log, resumed) = CheckpointLog::open(&spec, 5, 8, false).unwrap();
        assert_eq!(resumed.outcomes.len(), 4, "torn line dropped");
        // The file was truncated: appending continues cleanly.
        for i in 4..8 {
            log.record_outcome(i, &outcome(i));
        }
        log.finish().unwrap();
        let (_log, resumed) = CheckpointLog::open(&spec, 5, 8, false).unwrap();
        let expected: Vec<TrialOutcome> = (0..8).map(outcome).collect();
        assert_eq!(resumed.outcomes, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_campaign_is_refused() {
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 2);
        let (log, _) = CheckpointLog::open(&spec, 9, 10, false).unwrap();
        log.finish().unwrap();
        for (seed, trials, traced, what) in [
            (8u64, 10usize, false, "seed"),
            (9, 11, false, "trials"),
            (9, 10, true, "traced"),
        ] {
            let err = CheckpointLog::open(&spec, seed, trials, traced)
                .err()
                .unwrap_or_else(|| panic!("{what} mismatch must be refused"));
            assert!(matches!(err, Error::Mismatch { .. }), "{what}: {err}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shuffled_outcome_indices_are_corrupt_not_torn() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "{\"kind\":\"header\",\"v\":1,\"campaign_seed\":3,\"trials\":4,\"traced\":false}\n\
             {\"kind\":\"trial\",\"index\":2,\"disposition\":\"correct\",\"work_units\":1,\
             \"virtual_ns\":1,\"invocations\":1,\"design_cost_bits\":0}\n",
        )
        .unwrap();
        let spec = CheckpointSpec::new(&path, 2);
        let err = CheckpointLog::open(&spec, 3, 4, false).expect_err("index gap");
        assert!(matches!(err, Error::Corrupt { line: 2, .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn traced_log_pairs_events_with_outcomes() {
        use redundancy_core::obs::{CollectorObserver, ObsHandle, SpanKind, SpanStatus};
        use std::sync::Arc;

        let record = |i: u64| -> Vec<Event> {
            let collector = Arc::new(CollectorObserver::new());
            let mut handle = ObsHandle::new(collector.clone());
            let span = handle.begin_span(0, || SpanKind::Trial { index: i, seed: i });
            handle.end_span(
                span,
                5,
                SpanStatus::Trial {
                    disposition: "correct",
                },
                redundancy_core::obs::CostSnapshot::ZERO,
            );
            collector.take()
        };

        let path = temp_path("traced");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 2);
        let (log, _) = CheckpointLog::open(&spec, 2, 4, true).unwrap();
        // Outcome may land before its events (a worker races the merge
        // frontier): the trial only commits once both halves are in.
        log.record_outcome(0, &outcome(0));
        log.record_outcome(1, &outcome(1));
        assert_eq!(log.committed(), 0, "events still missing");
        log.record_events(0, &record(0));
        log.record_events(1, &record(1));
        assert_eq!(log.committed(), 2);
        log.finish().unwrap();

        let (_log, resumed) = CheckpointLog::open(&spec, 2, 4, true).unwrap();
        assert_eq!(resumed.outcomes.len(), 2);
        assert_eq!(resumed.events.len(), 4, "two events per trial");
        assert_eq!(resumed.span_offset, 2, "one span id per trial");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn design_cost_round_trips_bit_exactly() {
        let path = temp_path("bits");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 1);
        let tricky = TrialOutcome::Correct {
            cost: Cost {
                design_cost: 0.1 + 0.2, // 0.30000000000000004
                ..Cost::ZERO
            },
        };
        let (log, _) = CheckpointLog::open(&spec, 4, 1, false).unwrap();
        log.record_outcome(0, &tricky);
        log.finish().unwrap();
        let (_log, resumed) = CheckpointLog::open(&spec, 4, 1, false).unwrap();
        assert_eq!(
            resumed.outcomes[0].cost().design_cost.to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        let _ = std::fs::remove_file(&path);
    }
}
