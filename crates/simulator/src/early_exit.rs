//! Campaign-level aggregation of the work saved by eager early exit.
//!
//! When a pattern runs under
//! [`DecisionPolicy::Eager`](redundancy_core::patterns::DecisionPolicy),
//! each [`PatternReport`] records which alternatives were skipped or
//! cooperatively cancelled. A Monte-Carlo campaign wants those counts
//! *across* trials: [`EarlyExitCounters`] accumulates them with atomic
//! adds, so the same counter can be shared by the workers of
//! [`Campaign::run_parallel`](crate::trial::Campaign::run_parallel) —
//! addition commutes, so the totals are identical for any worker count or
//! scheduling, preserving the campaign layer's jobs-invariance guarantee.
//!
//! The *cost* side of the saving is measured by running the same campaign
//! under both policies (same seeds, so executed prefixes are identical)
//! and comparing summaries: [`work_saved`] turns the two
//! [`TrialSummary`]s into a per-trial saving and a percentage.

use std::sync::atomic::{AtomicU64, Ordering};

use redundancy_core::patterns::PatternReport;

use crate::trial::TrialSummary;

/// Thread-safe accumulator of early-exit activity across a campaign.
///
/// # Examples
///
/// ```
/// use redundancy_core::adjudicator::voting::MajorityVoter;
/// use redundancy_core::context::ExecContext;
/// use redundancy_core::patterns::{DecisionPolicy, ParallelEvaluation};
/// use redundancy_core::variant::pure_variant;
/// use redundancy_sim::early_exit::EarlyExitCounters;
///
/// let p = ParallelEvaluation::new(MajorityVoter::new())
///     .with_policy(DecisionPolicy::Eager)
///     .with_variant(pure_variant("a", 5, |x: &i64| x + 1))
///     .with_variant(pure_variant("b", 5, |x: &i64| x + 1))
///     .with_variant(pure_variant("c", 5, |x: &i64| x + 1));
/// let counters = EarlyExitCounters::new();
/// let report = p.run(&1, &mut ExecContext::new(0));
/// counters.record(&report);
/// let stats = counters.snapshot();
/// assert_eq!(stats.runs, 1);
/// assert_eq!(stats.skipped, 1); // majority fixed after two agreeing variants
/// ```
#[derive(Debug, Default)]
pub struct EarlyExitCounters {
    runs: AtomicU64,
    variants: AtomicU64,
    executed: AtomicU64,
    skipped: AtomicU64,
    cancelled: AtomicU64,
}

impl EarlyExitCounters {
    /// Creates a zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one pattern run's early-exit activity. Safe to call
    /// concurrently from campaign workers.
    pub fn record<O>(&self, report: &PatternReport<O>) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.variants
            .fetch_add(report.outcomes.len() as u64, Ordering::Relaxed);
        self.executed
            .fetch_add(report.executed() as u64, Ordering::Relaxed);
        self.skipped
            .fetch_add(report.skipped() as u64, Ordering::Relaxed);
        self.cancelled
            .fetch_add(report.cancelled() as u64, Ordering::Relaxed);
        // No flight-recorder mirroring here: the pattern engines record
        // every run at report construction, so adding it again would
        // double-count campaigns that use this accumulator.
    }

    /// A consistent snapshot of the totals so far.
    #[must_use]
    pub fn snapshot(&self) -> EarlyExitStats {
        EarlyExitStats {
            runs: self.runs.load(Ordering::Relaxed),
            variants: self.variants.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }
}

/// Totals of early-exit activity across a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EarlyExitStats {
    /// Pattern runs recorded.
    pub runs: u64,
    /// Alternatives across all runs (executed + skipped + cancelled).
    pub variants: u64,
    /// Alternatives that actually started executing.
    pub executed: u64,
    /// Alternatives never started because the verdict was already fixed.
    pub skipped: u64,
    /// Alternatives cooperatively cancelled mid-flight.
    pub cancelled: u64,
}

impl EarlyExitStats {
    /// Alternatives whose full execution was avoided (skipped +
    /// cancelled).
    #[must_use]
    pub fn early_exited(&self) -> u64 {
        self.skipped + self.cancelled
    }

    /// Fraction of all alternatives that never ran to completion; 0 when
    /// nothing was recorded.
    #[must_use]
    pub fn saved_fraction(&self) -> f64 {
        if self.variants == 0 {
            0.0
        } else {
            self.early_exited() as f64 / self.variants as f64
        }
    }

    /// Mean alternatives executed per run; 0 when nothing was recorded.
    #[must_use]
    pub fn executed_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.executed as f64 / self.runs as f64
        }
    }
}

/// The cost side of early exit: how much cheaper the eager campaign was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkSaved {
    /// Mean work units saved per trial (exhaustive mean − eager mean).
    pub work_units_per_trial: f64,
    /// Saving as a percentage of the exhaustive mean work (0 when the
    /// exhaustive campaign did no work).
    pub percent: f64,
    /// Mean virtual-time (latency) saving per trial in nanoseconds.
    pub latency_ns_per_trial: f64,
}

/// Compares two summaries of the *same* campaign (same trials, same
/// seeds) run under `Exhaustive` and `Eager` policies.
#[must_use]
pub fn work_saved(exhaustive: &TrialSummary, eager: &TrialSummary) -> WorkSaved {
    let work_units_per_trial = exhaustive.work.mean - eager.work.mean;
    let percent = if exhaustive.work.mean > 0.0 {
        100.0 * work_units_per_trial / exhaustive.work.mean
    } else {
        0.0
    };
    WorkSaved {
        work_units_per_trial,
        percent,
        latency_ns_per_trial: exhaustive.latency.mean - eager.latency.mean,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use redundancy_core::adjudicator::voting::MajorityVoter;
    use redundancy_core::context::ExecContext;
    use redundancy_core::cost::Cost;
    use redundancy_core::patterns::{DecisionPolicy, ParallelEvaluation};
    use redundancy_core::variant::{pure_variant, BoxedVariant};

    use super::*;
    use crate::trial::{Campaign, TrialOutcome};

    fn five_agreeing() -> ParallelEvaluation<i64, i64> {
        let mut p = ParallelEvaluation::new(MajorityVoter::new());
        for name in ["a", "b", "c", "d", "e"] {
            let v: BoxedVariant<i64, i64> = pure_variant(name, 10, |x: &i64| x + 1);
            p.push_variant(v);
        }
        p
    }

    #[test]
    fn counters_accumulate_skips() {
        let p = five_agreeing().with_policy(DecisionPolicy::Eager);
        let counters = EarlyExitCounters::new();
        for seed in 0..10 {
            let report = p.run(&1, &mut ExecContext::new(seed));
            counters.record(&report);
        }
        let stats = counters.snapshot();
        assert_eq!(stats.runs, 10);
        assert_eq!(stats.variants, 50);
        // Majority of 5 fixes after 3 agreeing variants: 2 skipped per run.
        assert_eq!(stats.executed, 30);
        assert_eq!(stats.skipped, 20);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.early_exited(), 20);
        assert!((stats.saved_fraction() - 0.4).abs() < 1e-12);
        assert!((stats.executed_per_run() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn counters_are_jobs_invariant_under_parallel_campaigns() {
        let run_with_jobs = |jobs: usize| {
            let p = five_agreeing().with_policy(DecisionPolicy::Eager);
            let counters = Arc::new(EarlyExitCounters::new());
            let campaign = Campaign::new(200);
            let c = Arc::clone(&counters);
            let summary = campaign.run_parallel(0x5eed, jobs, move |seed, _i| {
                let mut ctx = ExecContext::new(seed);
                let report = p.run(&1, &mut ctx);
                c.record(&report);
                TrialOutcome::Correct { cost: ctx.cost() }
            });
            (summary, counters.snapshot())
        };
        let (serial_summary, serial_stats) = run_with_jobs(1);
        for jobs in [2, 8] {
            let (summary, stats) = run_with_jobs(jobs);
            assert_eq!(serial_summary, summary, "summary for jobs={jobs}");
            assert_eq!(serial_stats, stats, "counters for jobs={jobs}");
        }
    }

    #[test]
    fn work_saved_compares_policies() {
        let campaign = Campaign::new(100);
        let run_policy = |policy| {
            let p = five_agreeing().with_policy(policy);
            campaign.run(3, |seed, _| {
                let mut ctx = ExecContext::new(seed);
                let _ = p.run(&1, &mut ctx);
                TrialOutcome::Correct { cost: ctx.cost() }
            })
        };
        let exhaustive = run_policy(DecisionPolicy::Exhaustive);
        let eager = run_policy(DecisionPolicy::Eager);
        let saved = work_saved(&exhaustive, &eager);
        // 2 of 5 variants (each 10 work units) are skipped every trial.
        assert!((saved.work_units_per_trial - 20.0).abs() < 1e-9);
        assert!((saved.percent - 40.0).abs() < 1e-9);
        assert!(saved.latency_ns_per_trial >= 0.0);
    }

    #[test]
    fn zero_stats_are_safe() {
        let stats = EarlyExitStats::default();
        assert_eq!(stats.saved_fraction(), 0.0);
        assert_eq!(stats.executed_per_run(), 0.0);
        let zero = TrialSummary {
            work: crate::stats::mean_ci(&[0.0]),
            ..Campaign::new(1).run(0, |_, _| TrialOutcome::Correct { cost: Cost::ZERO })
        };
        let saved = work_saved(&zero, &zero);
        assert_eq!(saved.percent, 0.0);
    }
}
