//! Deterministic fault injection for campaign infrastructure.
//!
//! The rest of the workspace injects faults into *computations* (the
//! `redundancy-faults` specs perturb variant outputs); this module
//! injects faults into the *harness itself*: worker panics at chosen
//! trial boundaries, cooperative cancellation at a chosen charge point
//! inside a trial, and scheduling delays on chosen chunks. Together with
//! [`checkpoint`](crate::checkpoint) it answers the question the paper's
//! redundancy patterns pose about their own tooling: does the campaign
//! survive its own crashes without changing its answer?
//!
//! A [`ChaosPlan`] is fully determined by its seed and its explicit
//! injection sites, so a chaos campaign is as reproducible as a clean
//! one. Kill and cancel sites fire **once per plan instance**: after a
//! panic is caught and the campaign resumed *with the same plan*, the
//! re-run of the victim trial proceeds cleanly — exactly the behaviour
//! of a process restart, where the chaos environment variable is gone.
//!
//! Injected panics carry payloads prefixed `"chaos: "` so harness tests
//! can distinguish scripted failures ([`ChaosPlan::is_chaos_panic`])
//! from real bugs.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::Duration;

use redundancy_core::obs::telemetry::{self, Counter};
use redundancy_faults::spec::{hash_fraction, mix64};

/// A fire-once injection site within a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Site {
    KillBefore(usize),
    KillAfter(usize),
    Cancel(usize),
}

/// A deterministic script of harness faults: which trials to kill the
/// worker around, which trials to cancel mid-execution, and how densely
/// to delay chunk scheduling. Shared by reference across campaign
/// workers (`&ChaosPlan` is `Sync`).
#[derive(Debug, Default)]
pub struct ChaosPlan {
    seed: u64,
    kill_before: BTreeSet<usize>,
    kill_after: BTreeSet<usize>,
    cancel_at: BTreeMap<usize, u64>,
    delay_density: f64,
    delay_micros: u64,
    /// Sites that have already fired; kills and cancels are one-shot so
    /// a resumed campaign re-runs its victim trials cleanly.
    fired: Mutex<BTreeSet<Site>>,
}

impl ChaosPlan {
    /// Creates an empty plan (injects nothing) with the given seed for
    /// density-based decisions.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Kills the worker (panics) just before trial `index` starts.
    #[must_use]
    pub fn kill_before_trial(mut self, index: usize) -> Self {
        self.kill_before.insert(index);
        self
    }

    /// Kills the worker (panics) just after trial `index` completes,
    /// before its outcome is recorded.
    #[must_use]
    pub fn kill_after_trial(mut self, index: usize) -> Self {
        self.kill_after.insert(index);
        self
    }

    /// Cancels trial `index` on its `checks`-th fuel charge (clamped to
    /// at least 1) via a [`CancelToken::cancel_after`] fuse.
    ///
    /// [`CancelToken::cancel_after`]: redundancy_core::CancelToken::cancel_after
    #[must_use]
    pub fn cancel_at_charge(mut self, index: usize, checks: u64) -> Self {
        self.cancel_at.insert(index, checks.max(1));
        self
    }

    /// Delays roughly `density` of scheduling chunks by `micros`
    /// microseconds each, chosen deterministically per chunk index from
    /// the plan seed. `density` is clamped to `[0, 1]`.
    #[must_use]
    pub fn delay_chunks(mut self, density: f64, micros: u64) -> Self {
        self.delay_density = density.clamp(0.0, 1.0);
        self.delay_micros = micros;
        self
    }

    /// Records that `site` fired; returns `false` if it already had.
    fn fire(&self, site: Site) -> bool {
        self.fired
            .lock()
            .expect("chaos lock never poisoned")
            .insert(site)
    }

    /// Hook: call at the top of trial `index`. Panics (once) if the plan
    /// kills the worker before this trial.
    pub fn before_trial(&self, index: usize) {
        if self.kill_before.contains(&index) && self.fire(Site::KillBefore(index)) {
            telemetry::add(Counter::ChaosKills, 1);
            panic!("chaos: killed before trial {index}");
        }
    }

    /// Hook: call after trial `index` computed its outcome but before
    /// the outcome is recorded. Panics (once) if the plan kills the
    /// worker after this trial — modelling the worst checkpoint case,
    /// where finished work is lost because it was never committed.
    pub fn after_trial(&self, index: usize) {
        if self.kill_after.contains(&index) && self.fire(Site::KillAfter(index)) {
            telemetry::add(Counter::ChaosKills, 1);
            panic!("chaos: killed after trial {index}");
        }
    }

    /// Hook: the charge-check budget to arm trial `index`'s context
    /// with, if this plan cancels that trial (once).
    #[must_use]
    pub fn charge_fuse(&self, index: usize) -> Option<u64> {
        let checks = *self.cancel_at.get(&index)?;
        self.fire(Site::Cancel(index)).then_some(checks)
    }

    /// Panics with the scripted-cancellation payload for trial `index`.
    ///
    /// Harnesses call this when a chaos-armed fuse fired mid-trial: the
    /// partial outcome must be *discarded* (not recorded as a detected
    /// failure) or the resumed campaign would disagree with a clean run.
    pub fn cancelled_trial(index: usize) -> ! {
        telemetry::add(Counter::ChaosCancels, 1);
        panic!("chaos: cancelled trial {index}")
    }

    /// Hook: how long chunk `chunk` should stall before running, if this
    /// plan delays it. Deterministic in `(seed, chunk)` and *not*
    /// one-shot — delays perturb scheduling, never results, so replaying
    /// them is harmless and keeps resumed timing comparable.
    #[must_use]
    pub fn chunk_delay(&self, chunk: usize) -> Option<Duration> {
        if self.delay_density <= 0.0 || self.delay_micros == 0 {
            return None;
        }
        let roll = hash_fraction(mix64(self.seed, chunk as u64));
        (roll < self.delay_density).then(|| Duration::from_micros(self.delay_micros))
    }

    /// Whether a caught panic payload is a scripted chaos fault (its
    /// payload is a string prefixed `"chaos: "`) rather than a real bug.
    #[must_use]
    pub fn is_chaos_panic(payload: &(dyn std::any::Any + Send)) -> bool {
        let text = payload
            .downcast_ref::<&'static str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        text.is_some_and(|t| t.starts_with("chaos: "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = ChaosPlan::new(7);
        for i in 0..32 {
            plan.before_trial(i);
            plan.after_trial(i);
            assert_eq!(plan.charge_fuse(i), None);
            assert_eq!(plan.chunk_delay(i), None);
        }
    }

    #[test]
    fn kill_sites_fire_exactly_once() {
        let plan = ChaosPlan::new(0).kill_before_trial(3).kill_after_trial(5);
        let err = catch_unwind(AssertUnwindSafe(|| plan.before_trial(3)))
            .expect_err("first visit panics");
        assert!(ChaosPlan::is_chaos_panic(&*err));
        // The resumed re-run of trial 3 proceeds cleanly.
        plan.before_trial(3);
        let err =
            catch_unwind(AssertUnwindSafe(|| plan.after_trial(5))).expect_err("first visit panics");
        assert!(ChaosPlan::is_chaos_panic(&*err));
        plan.after_trial(5);
        // Unlisted trials never panic.
        plan.before_trial(5);
        plan.after_trial(3);
    }

    #[test]
    fn charge_fuse_is_one_shot_and_clamped() {
        let plan = ChaosPlan::new(0)
            .cancel_at_charge(2, 0)
            .cancel_at_charge(9, 40);
        assert_eq!(plan.charge_fuse(2), Some(1));
        assert_eq!(plan.charge_fuse(2), None);
        assert_eq!(plan.charge_fuse(9), Some(40));
        assert_eq!(plan.charge_fuse(9), None);
        assert_eq!(plan.charge_fuse(0), None);
    }

    #[test]
    fn chunk_delays_are_deterministic_and_density_bounded() {
        let plan = ChaosPlan::new(42).delay_chunks(0.25, 50);
        let again = ChaosPlan::new(42).delay_chunks(0.25, 50);
        let hits = (0..1000)
            .filter(|&c| {
                assert_eq!(plan.chunk_delay(c), again.chunk_delay(c));
                plan.chunk_delay(c) == Some(Duration::from_micros(50))
            })
            .count();
        // ~250 expected; loose bounds keep the test seed-robust.
        assert!((150..350).contains(&hits), "hits={hits}");
        // Different seeds pick different chunks.
        let other = ChaosPlan::new(43).delay_chunks(0.25, 50);
        assert!((0..1000).any(|c| plan.chunk_delay(c) != other.chunk_delay(c)));
    }

    #[test]
    fn chaos_panics_are_recognized_and_real_ones_are_not() {
        let chaos = catch_unwind(|| ChaosPlan::cancelled_trial(4)).expect_err("always panics");
        assert!(ChaosPlan::is_chaos_panic(&*chaos));
        let owned = catch_unwind(|| panic!("{}", String::from("chaos: styled")))
            .expect_err("always panics");
        assert!(ChaosPlan::is_chaos_panic(&*owned));
        let real = catch_unwind(|| panic!("index out of bounds")).expect_err("always panics");
        assert!(!ChaosPlan::is_chaos_panic(&*real));
    }
}
