//! Fixed-width text tables for experiment output.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use redundancy_sim::table::Table;
///
/// let mut t = Table::new(&["N", "reliability"]);
/// t.row(&["3", "0.972"]);
/// t.row(&["5", "0.991"]);
/// let text = t.to_string();
/// assert!(text.contains("reliability"));
/// assert!(text.lines().count() == 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity does not match header"
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity does not match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', w - cell.len()));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_consistent() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "22"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 2], "22");
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["a"]);
        t.row_owned(vec!["x".to_owned()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        let _ = Table::new(&[]);
    }
}
