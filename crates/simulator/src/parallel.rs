//! Deterministic work sharding for embarrassingly parallel experiment
//! loads.
//!
//! Every helper here preserves *index order* in its results: work is
//! distributed across scoped worker threads, but outputs land in the slot
//! of their input index, so summaries computed from the returned `Vec`
//! are bitwise independent of the worker count and of OS scheduling.
//! [`Campaign::run_parallel`](crate::trial::Campaign::run_parallel) and
//! the experiment regenerators' `--jobs` knobs are built on these.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads to use by default: the hardware's
/// available parallelism, or 1 when it cannot be queried.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0..n)` across at most `jobs` scoped worker threads, returning
/// the results in index order.
///
/// Workers claim indices from a shared cursor (dynamic load balancing:
/// uneven per-index costs don't leave threads idle), but because results
/// are written to their index's slot the output is identical for any
/// `jobs`, including 1. With `jobs <= 1` (or `n <= 1`) no threads are
/// spawned at all.
///
/// # Panics
///
/// Panics if `f` panicked on any worker (the scope joins all workers
/// and re-panics).
pub fn parallel_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let slot_cells: Vec<Mutex<&mut Option<T>>> = slots.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                // Each index is claimed exactly once, so the lock is
                // uncontended; it exists to hand the worker a mutable
                // view of its slot.
                **slot_cells[i].lock().expect("slot lock never poisoned") = Some(result);
            });
        }
    });
    drop(slot_cells);
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed"))
        .collect()
}

/// Runs a batch of heterogeneous tasks across at most `jobs` worker
/// threads, returning their results in task order.
///
/// The experiment regenerators use this to run independent table rows or
/// cells concurrently: each task owns its own seed-derived state, so the
/// rendered table is identical for any `jobs`.
pub fn parallel_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let task_cells: Vec<Mutex<Option<F>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    parallel_indexed(jobs, n, |i| {
        let task = task_cells[i]
            .lock()
            .expect("task lock never poisoned")
            .take()
            .expect("each task runs once");
        task()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_are_in_order_for_any_job_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(
                parallel_indexed(jobs, 97, |i| i * i),
                expected,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn indexed_handles_empty_and_single() {
        assert_eq!(parallel_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn tasks_preserve_order_and_run_once() {
        use std::sync::atomic::AtomicUsize;
        let runs = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| {
                let runs = &runs;
                Box::new(move || {
                    runs.fetch_add(1, Ordering::Relaxed);
                    i * 3
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = parallel_tasks(4, tasks);
        assert_eq!(out, (0..20).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(runs.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let _ = parallel_indexed(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
