//! Deterministic work sharding for embarrassingly parallel experiment
//! loads.
//!
//! Every helper here preserves *index order* in its results: work is
//! distributed across the persistent [`WorkerPool`], but outputs land in
//! the slot of their input index, so summaries computed from the
//! returned `Vec` are bitwise independent of the worker count and of OS
//! scheduling. [`Campaign::run_parallel`](crate::trial::Campaign::run_parallel)
//! and the experiment regenerators' `--jobs` knobs are built on these.
//!
//! Scheduling is **chunked**: workers claim contiguous runs of indices
//! from a shared cursor and write results through disjoint views of the
//! output buffer, so the per-index cost is one relaxed `fetch_add`
//! amortized over [`chunk_size`] indices and one unsynchronized slot
//! write — no per-slot locks anywhere. Heterogeneous task batches can
//! additionally opt into longest-task-first scheduling
//! ([`parallel_tasks_lpt`]) to cut tail latency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use redundancy_core::obs::telemetry::{self, Counter, Timer};

use crate::pool::WorkerPool;

/// How many chunks each worker should get on average: > 1 so uneven
/// per-index costs rebalance dynamically, small enough that the cursor
/// stays cold.
const CHUNKS_PER_WORKER: usize = 4;

/// The number of worker threads to use by default: the hardware's
/// available parallelism, or 1 when it cannot be queried.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The chunk length [`parallel_indexed`] claims per cursor hit: sized
/// adaptively from `n / jobs` so each worker sees ~[`CHUNKS_PER_WORKER`]
/// chunks, never below 1.
#[must_use]
pub fn chunk_size(n: usize, jobs: usize) -> usize {
    (n / (jobs.max(1) * CHUNKS_PER_WORKER)).max(1)
}

/// A raw view of the output buffer that workers write through.
///
/// Chunk claiming guarantees every index is claimed by exactly one
/// worker, so concurrent writes never alias; the caller must not touch
/// the buffer until the region completes (the pool blocks until then).
struct SlotWriter<T>(*mut Option<T>);

// SAFETY: each worker writes a disjoint set of indices (enforced by the
// claiming cursor), and the buffer outlives the region because
// `WorkerPool::run_region` blocks until every worker is done.
unsafe impl<T: Send> Send for SlotWriter<T> {}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one worker.
    unsafe fn set(&self, i: usize, value: T) {
        // The overwritten slot is always `None`, so no stale value drops.
        unsafe { *self.0.add(i) = Some(value) };
    }
}

/// Runs `f(0..n)` across at most `jobs` workers of the persistent pool,
/// returning the results in index order.
///
/// Workers claim *chunks* of [`chunk_size`] consecutive indices from a
/// shared cursor (dynamic load balancing with amortized claim cost), but
/// because results are written to their index's slot the output is
/// identical for any `jobs`, including 1. With `jobs <= 1` (or
/// `n <= 1`) everything runs inline on the calling thread.
///
/// # Panics
///
/// Propagates a panic from `f` on any worker (after the whole region
/// has quiesced).
pub fn parallel_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    parallel_indexed_chunked(jobs, n, chunk_size(n, jobs), f)
}

/// Like [`parallel_indexed`] with an explicit chunk length (clamped to
/// at least 1). Chunks of `chunk >= n` degenerate to one chunk, which
/// runs inline.
pub fn parallel_indexed_chunked<T, F>(jobs: usize, n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_indexed_chunked_hooked(jobs, n, chunk, |_| {}, f)
}

/// Like [`parallel_indexed_chunked`] with a `before_chunk` hook invoked
/// with the chunk index right after a worker claims it, before any of
/// its items run. The simulator's chaos harness injects deterministic
/// scheduling delays here ([`ChaosPlan::chunk_delay`]); the hook runs on
/// the claiming worker's thread and must not panic the schedule apart —
/// results are index-ordered regardless of how long any hook stalls.
///
/// [`ChaosPlan::chunk_delay`]: crate::chaos::ChaosPlan::chunk_delay
pub fn parallel_indexed_chunked_hooked<T, F, H>(
    jobs: usize,
    n: usize,
    chunk: usize,
    before_chunk: H,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    H: Fn(usize) + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk.min(n.max(1)));
    // The calling thread is a participant, so `jobs` workers need
    // `jobs - 1` helpers — and never more than the extra chunks.
    let helpers = (jobs - 1).min(n_chunks.saturating_sub(1));
    if helpers == 0 {
        // Inline, chunk by chunk, so the hook fires exactly as it would
        // with workers (once per chunk, before its items). Claim latency
        // is not meaningful here (there is no contended cursor), but
        // claim/complete counts and busy time keep the flight recorder's
        // utilization view consistent across the two paths.
        let mut out = Vec::with_capacity(n);
        for c in 0..n_chunks {
            telemetry::add(Counter::ChunksClaimed, 1);
            before_chunk(c);
            let run_timer = telemetry::timer_start();
            for i in c * chunk..((c + 1) * chunk).min(n) {
                out.push(f(i));
            }
            if let Some(ns) = telemetry::timer_stop(Timer::ChunkRunNs, run_timer) {
                telemetry::add(Counter::WorkerBusyNs, ns);
            }
            telemetry::add(Counter::ChunksCompleted, 1);
        }
        return out;
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let writer = SlotWriter(slots.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    WorkerPool::global().run_region(helpers, &|| loop {
        let claim_timer = telemetry::timer_start();
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        telemetry::timer_stop(Timer::ChunkClaimNs, claim_timer);
        telemetry::add(Counter::ChunksClaimed, 1);
        before_chunk(c);
        let start = c * chunk;
        let end = ((c + 1) * chunk).min(n);
        let run_timer = telemetry::timer_start();
        for i in start..end {
            let value = f(i);
            // SAFETY: chunk `c` was claimed exactly once, so indices
            // `start..end` are written by this worker alone, in bounds.
            unsafe { writer.set(i, value) };
        }
        if let Some(ns) = telemetry::timer_stop(Timer::ChunkRunNs, run_timer) {
            telemetry::add(Counter::WorkerBusyNs, ns);
        }
        telemetry::add(Counter::ChunksCompleted, 1);
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed"))
        .collect()
}

/// Runs a batch of heterogeneous tasks across at most `jobs` pool
/// workers, returning their results in task order.
///
/// The experiment regenerators use this to run independent table rows or
/// cells concurrently: each task owns its own seed-derived state, so the
/// rendered table is identical for any `jobs`.
pub fn parallel_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let order: Vec<usize> = (0..tasks.len()).collect();
    run_tasks_in_order(jobs, tasks, &order)
}

/// Like [`parallel_tasks`] with a cost hint per task, claimed in
/// longest-task-first (LPT) order: when row costs are heterogeneous
/// (e.g. Table 2's technique rows), starting the heaviest tasks first
/// keeps them off the tail of the schedule. Hints only order the
/// *claiming*; results still land in task order and are identical for
/// any `jobs` (ties claim in task order, so scheduling is deterministic
/// too).
pub fn parallel_tasks_lpt<T, F>(jobs: usize, tasks: Vec<(u64, F)>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| tasks[b].0.cmp(&tasks[a].0).then(a.cmp(&b)));
    let tasks: Vec<F> = tasks.into_iter().map(|(_, task)| task).collect();
    run_tasks_in_order(jobs, tasks, &order)
}

/// Claims positions of `order` from a shared cursor (chunk = 1: task
/// batches are small and heterogeneous) and writes each task's result
/// into its original slot.
fn run_tasks_in_order<T, F>(jobs: usize, tasks: Vec<F>, order: &[usize]) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        // Inline, in the same claim order as the parallel path (order
        // cannot change any task's result — tasks are independent — but
        // keeping it identical makes scheduling fully deterministic).
        let mut cells: Vec<Option<F>> = tasks.into_iter().map(Some).collect();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for &i in order {
            let task = cells[i].take().expect("each task runs once");
            slots[i] = Some(task());
        }
        return slots
            .into_iter()
            .map(|slot| slot.expect("every task ran"))
            .collect();
    }
    let task_cells: Vec<Mutex<Option<F>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let writer = SlotWriter(slots.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let helpers = jobs - 1;
    WorkerPool::global().run_region(helpers, &|| loop {
        let p = cursor.fetch_add(1, Ordering::Relaxed);
        if p >= n {
            break;
        }
        let i = order[p];
        let task = task_cells[i]
            .lock()
            .expect("task lock never poisoned")
            .take()
            .expect("each task runs once");
        let value = task();
        // SAFETY: position `p` (hence slot `i`) is claimed exactly once.
        unsafe { writer.set(i, value) };
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every task was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_are_in_order_for_any_job_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(
                parallel_indexed(jobs, 97, |i| i * i),
                expected,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn indexed_handles_empty_and_single() {
        assert_eq!(parallel_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn explicit_chunk_of_at_least_n_runs_inline() {
        let expected: Vec<usize> = (0..10).map(|i| i + 1).collect();
        for chunk in [10, 11, 1000] {
            assert_eq!(
                parallel_indexed_chunked(8, 10, chunk, |i| i + 1),
                expected,
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn chunks_that_do_not_divide_n_cover_every_index() {
        // 97 indices in chunks of 7: 14 chunks, last one ragged (6).
        let expected: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for jobs in [2, 5, 16] {
            assert_eq!(
                parallel_indexed_chunked(jobs, 97, 7, |i| i * 3),
                expected,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn chunk_zero_is_clamped_to_one() {
        let expected: Vec<usize> = (0..13).collect();
        assert_eq!(parallel_indexed_chunked(4, 13, 0, |i| i), expected);
    }

    #[test]
    fn chunk_hook_fires_once_per_chunk_for_any_job_count() {
        for jobs in [1usize, 4] {
            let seen = Mutex::new(Vec::new());
            let out = parallel_indexed_chunked_hooked(
                jobs,
                10,
                3,
                |c| seen.lock().unwrap().push(c),
                |i| i,
            );
            assert_eq!(out, (0..10).collect::<Vec<_>>());
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3], "jobs={jobs}");
        }
    }

    #[test]
    fn chunk_size_is_adaptive_and_positive() {
        assert_eq!(chunk_size(1000, 8), 31); // 1000 / 32
        assert_eq!(chunk_size(1000, 1), 250);
        assert_eq!(chunk_size(3, 8), 1); // never below 1
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(10, 0), 2); // jobs clamped to 1
    }

    #[test]
    fn tasks_preserve_order_and_run_once() {
        use std::sync::atomic::AtomicUsize;
        let runs = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| {
                let runs = &runs;
                Box::new(move || {
                    runs.fetch_add(1, Ordering::Relaxed);
                    i * 3
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = parallel_tasks(4, tasks);
        assert_eq!(out, (0..20).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(runs.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn lpt_tasks_return_results_in_task_order() {
        for jobs in [1usize, 2, 8] {
            let tasks: Vec<(u64, Box<dyn FnOnce() -> usize + Send>)> = (0..12usize)
                .map(|i| {
                    let cost = (i % 5) as u64 * 10;
                    (
                        cost,
                        Box::new(move || i * 7) as Box<dyn FnOnce() -> usize + Send>,
                    )
                })
                .collect();
            let out = parallel_tasks_lpt(jobs, tasks);
            assert_eq!(
                out,
                (0..12).map(|i| i * 7).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn lpt_claims_heaviest_first() {
        use std::sync::Mutex as StdMutex;
        let claimed: StdMutex<Vec<usize>> = StdMutex::new(Vec::new());
        let tasks: Vec<(u64, Box<dyn FnOnce() -> usize + Send>)> = [3u64, 50, 7, 50, 1]
            .iter()
            .enumerate()
            .map(|(i, &cost)| {
                let claimed = &claimed;
                (
                    cost,
                    Box::new(move || {
                        claimed.lock().unwrap().push(i);
                        i
                    }) as Box<dyn FnOnce() -> usize + Send>,
                )
            })
            .collect();
        // jobs=2 so the claim order is observable but racy in *timing*
        // only; the claim sequence itself is fixed by the order array.
        let out = parallel_tasks_lpt(2, tasks);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        let mut first_two = claimed.lock().unwrap()[..2].to_vec();
        first_two.sort_unstable();
        // The two 50-cost tasks (indices 1 and 3) must be claimed before
        // any light task.
        assert_eq!(first_two, vec![1, 3]);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = parallel_indexed(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "pooled boom")]
    fn panic_from_a_pooled_helper_propagates() {
        // Force the panicking index into a helper's chunk: chunk 1 with
        // many workers makes it overwhelmingly likely a pool thread hits
        // it; correctness (propagation) holds either way.
        let _ = parallel_indexed_chunked(8, 64, 1, |i| {
            if i == 63 {
                panic!("pooled boom");
            }
            i
        });
    }

    #[test]
    fn pool_survives_a_panicked_campaign() {
        let result = std::panic::catch_unwind(|| {
            parallel_indexed(4, 32, |i| {
                assert!(i != 17, "die");
                i
            })
        });
        assert!(result.is_err());
        // The shared pool keeps serving regions afterwards.
        let expected: Vec<usize> = (0..32).collect();
        assert_eq!(parallel_indexed(4, 32, |i| i), expected);
    }
}
