//! The campaign flight recorder's control plane: a background sampler
//! over the lock-free telemetry registry.
//!
//! [`CampaignMonitor::start`] switches the global
//! [`telemetry`](redundancy_core::obs::telemetry) registry on and spawns
//! one sampler thread that snapshots it every
//! [`MonitorConfig::interval`]. Each tick can drive three outputs, all
//! optional and independent:
//!
//! - a **live stderr progress line** (`\r`-rewritten in place): trials
//!   done/scheduled, trials/sec over the last interval, ETA, workers
//!   busy, merger stalls, early-exit work saved, chaos/pool fault
//!   counts;
//! - a **JSONL snapshot stream**: one self-contained JSON object per
//!   tick with every counter and a digest of every latency histogram;
//! - a **Prometheus text file**, rewritten atomically
//!   (write-to-temp-then-rename) so a textfile collector never reads a
//!   torn exposition.
//!
//! Dropping the monitor stops the sampler, takes one final snapshot so
//! the exports cover the full campaign, and switches telemetry back off
//! — the engine's hooks return to their one-load-and-branch disabled
//! cost. The monitor observes; it never changes results: campaign
//! summaries and traced streams are bit-identical with it on or off.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use redundancy_core::obs::prometheus;
use redundancy_core::obs::telemetry::{Counter, Telemetry, TelemetrySnapshot, Timer};

/// What the sampler should do each tick. The default is the live stderr
/// line every 500 ms with no file exports.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Time between snapshots (clamped to at least 1 ms).
    pub interval: Duration,
    /// Rewrite a progress line on stderr each tick.
    pub live: bool,
    /// Write the latest snapshot here in Prometheus text format
    /// (atomically, via a `.tmp` sibling) each tick.
    pub prometheus_path: Option<PathBuf>,
    /// Append one JSON object per tick to this file.
    pub jsonl_path: Option<PathBuf>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval: Duration::from_millis(500),
            live: true,
            prometheus_path: None,
            jsonl_path: None,
        }
    }
}

/// Shared stop signal: flag + condvar so `Drop` interrupts a sleeping
/// sampler immediately instead of waiting out the interval.
struct StopSignal {
    stopped: AtomicBool,
    lock: Mutex<()>,
    wake: Condvar,
}

impl StopSignal {
    fn new() -> Self {
        StopSignal {
            stopped: AtomicBool::new(false),
            lock: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::Release);
        let _guard = self.lock.lock().expect("monitor stop lock never poisoned");
        self.wake.notify_all();
    }

    /// Sleeps up to `timeout`; returns `true` once stopped.
    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.lock.lock().expect("monitor stop lock never poisoned");
        if self.stopped.load(Ordering::Acquire) {
            return true;
        }
        let (_guard, _timeout) = self
            .wake
            .wait_timeout(guard, timeout)
            .expect("monitor stop lock never poisoned");
        self.stopped.load(Ordering::Acquire)
    }
}

/// A running flight-recorder session. Constructed by
/// [`CampaignMonitor::start`]; dropping it (or calling
/// [`stop`](CampaignMonitor::stop)) finishes the session.
pub struct CampaignMonitor {
    signal: Arc<StopSignal>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl CampaignMonitor {
    /// Resets and enables the global telemetry registry, then starts the
    /// background sampler. One session at a time: the monitor owns the
    /// global registry while it runs (counters are reset at start so
    /// rates and ETA describe this session, not process history).
    ///
    /// # Panics
    ///
    /// Panics if the sampler thread cannot be spawned.
    #[must_use]
    pub fn start(config: MonitorConfig) -> Self {
        let telemetry = Telemetry::global();
        telemetry.reset();
        telemetry.set_enabled(true);
        let signal = Arc::new(StopSignal::new());
        let thread_signal = Arc::clone(&signal);
        let interval = config.interval.max(Duration::from_millis(1));
        let thread = std::thread::Builder::new()
            .name("redundancy-monitor".into())
            .spawn(move || {
                let mut sampler = Sampler::new(&config);
                while !thread_signal.wait(interval) {
                    sampler.tick(false);
                }
                sampler.tick(true);
            })
            .expect("monitor thread spawn");
        CampaignMonitor {
            signal,
            thread: Some(thread),
        }
    }

    /// Stops the sampler, waits for its final snapshot to be written,
    /// and disables telemetry. Equivalent to dropping the monitor.
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for CampaignMonitor {
    fn drop(&mut self) {
        self.signal.stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        Telemetry::global().set_enabled(false);
    }
}

/// The sampler thread's state between ticks.
struct Sampler {
    started: Instant,
    live: bool,
    prometheus_path: Option<PathBuf>,
    jsonl: Option<File>,
    prev: TelemetrySnapshot,
    prev_at: Instant,
    line_was_live: bool,
}

impl Sampler {
    fn new(config: &MonitorConfig) -> Self {
        let jsonl = config.jsonl_path.as_ref().and_then(|path| {
            File::create(path)
                .map_err(|err| eprintln!("monitor: cannot create {}: {err}", path.display()))
                .ok()
        });
        let now = Instant::now();
        Sampler {
            started: now,
            live: config.live,
            prometheus_path: config.prometheus_path.clone(),
            jsonl,
            prev: Telemetry::global().snapshot(),
            prev_at: now,
            line_was_live: false,
        }
    }

    fn tick(&mut self, last: bool) {
        let snapshot = Telemetry::global().snapshot();
        let now = Instant::now();
        let dt = now.duration_since(self.prev_at);
        if self.live {
            let line = progress_line(&self.prev, &snapshot, dt);
            eprint!("\r{line}\x1b[K");
            self.line_was_live = true;
            if last {
                eprintln!();
            }
            let _ = std::io::stderr().flush();
        }
        if let Some(file) = &mut self.jsonl {
            let line = snapshot_json(&snapshot, now.duration_since(self.started), dt, &self.prev);
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
        if let Some(path) = &self.prometheus_path {
            let text = prometheus::render_telemetry(&snapshot);
            // Atomic replace: a scraper sees the old file or the new
            // one, never a torn write.
            let tmp = path.with_extension("tmp");
            let written = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
            if let Err(err) = written {
                eprintln!("monitor: cannot write {}: {err}", path.display());
                self.prometheus_path = None;
            }
        }
        self.prev = snapshot;
        self.prev_at = now;
    }
}

/// Renders the live progress line from two consecutive snapshots `dt`
/// apart. Pure, so the format is unit-testable without a sampler.
#[must_use]
pub fn progress_line(prev: &TelemetrySnapshot, cur: &TelemetrySnapshot, dt: Duration) -> String {
    let completed = cur.trials_completed();
    let scheduled = cur.counter(Counter::TrialsScheduled);
    let runs = cur.counter(Counter::PatternRuns);
    let arrivals = cur.counter(Counter::ServiceArrivals);
    // Harnesses that drive the pattern engines directly (most exp_*
    // tables) never schedule Campaign trials; the service event-loop
    // runtime schedules neither trials nor pattern runs. Lead with what
    // actually moved so the line isn't a useless "0/0 trials".
    let (unit, completed, scheduled, prev_completed) = if scheduled == 0 && runs > 0 {
        ("patterns", runs, runs, prev.counter(Counter::PatternRuns))
    } else if scheduled == 0 && runs == 0 && arrivals > 0 {
        (
            "requests",
            cur.service_resolved(),
            arrivals,
            prev.service_resolved(),
        )
    } else {
        ("trials", completed, scheduled, prev.trials_completed())
    };
    let delta = completed.saturating_sub(prev_completed);
    #[allow(clippy::cast_precision_loss)]
    let rate = if dt.as_secs_f64() > 0.0 {
        delta as f64 / dt.as_secs_f64()
    } else {
        0.0
    };
    let mut line = if unit == "patterns" {
        format!("[monitor] {completed} patterns")
    } else {
        format!("[monitor] {completed}/{scheduled} {unit}")
    };
    let _ = write!(line, "  {} {unit}/s", fmt_compact(rate));
    if rate > 0.0 && scheduled > completed {
        #[allow(clippy::cast_precision_loss)]
        let eta = (scheduled - completed) as f64 / rate;
        let _ = write!(line, "  eta {}", fmt_seconds(eta));
    }
    let _ = write!(line, "  busy {}", cur.workers_busy());
    let stalls = cur.counter(Counter::MergerStalls);
    if stalls > 0 {
        let _ = write!(line, "  stalls {stalls}");
    }
    if cur.counter(Counter::PatternRuns) > 0 {
        let _ = write!(line, "  saved {:.1}%", 100.0 * cur.variant_work_saved());
    }
    if unit == "requests" {
        let _ = write!(line, "  inflight {}", cur.service_in_flight());
        let depth = cur.service_queue_depth();
        if depth > 0 {
            let _ = write!(line, "  queued {depth}");
        }
        let fired = cur.counter(Counter::ServiceHedgesFired);
        if fired > 0 {
            let _ = write!(
                line,
                "  hedges {fired}f/{}w",
                cur.counter(Counter::ServiceHedgesWon)
            );
        }
        let shed = cur.counter(Counter::ServiceRejected);
        if shed > 0 {
            let _ = write!(line, "  shed {shed}");
        }
        let opens = cur.counter(Counter::ServiceBreakerOpens);
        if opens > 0 {
            let _ = write!(
                line,
                "  breakers {opens}o/{}c",
                cur.counter(Counter::ServiceBreakerCloses)
            );
        }
    }
    let kills = cur.counter(Counter::ChaosKills);
    let cancels = cur.counter(Counter::ChaosCancels);
    if kills + cancels > 0 {
        let _ = write!(line, "  chaos {kills}k/{cancels}c");
    }
    let panics =
        cur.counter(Counter::PoolPanicsCaught) + cur.counter(Counter::PoolPanicsSuppressed);
    if panics > 0 {
        let _ = write!(line, "  panics {panics}");
    }
    line
}

/// `1234.5` -> `"1.2k"`, `3.2e6` -> `"3.2M"`; plain below 1000.
fn fmt_compact(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Seconds to a short human ETA: `"850ms"`, `"12.3s"`, `"4m08s"`.
fn fmt_seconds(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1000.0)
    } else if secs < 60.0 {
        format!("{secs:.1}s")
    } else {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let whole = secs as u64;
        format!("{}m{:02}s", whole / 60, whole % 60)
    }
}

/// Renders one JSONL snapshot line: elapsed time, interval rate, every
/// counter, and a digest (count/sum/min/max/p50/p95/p99) per timer.
/// Pure and hand-rolled (the workspace carries no JSON dependency); the
/// shape is validated by [`validate_json_line`] in `monitor-smoke`.
#[must_use]
pub fn snapshot_json(
    cur: &TelemetrySnapshot,
    elapsed: Duration,
    dt: Duration,
    prev: &TelemetrySnapshot,
) -> String {
    let delta = cur
        .trials_completed()
        .saturating_sub(prev.trials_completed());
    #[allow(clippy::cast_precision_loss)]
    let rate = if dt.as_secs_f64() > 0.0 {
        delta as f64 / dt.as_secs_f64()
    } else {
        0.0
    };
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"elapsed_ms\":{},\"trials_per_sec\":{:.3},\"counters\":{{",
        elapsed.as_millis(),
        rate
    );
    for (i, (counter, value)) in cur.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{value}", counter.name());
    }
    out.push_str("},\"timers\":{");
    for (i, timer) in Timer::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let hist = cur.timer(*timer);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{}}}",
            timer.name(),
            hist.count(),
            hist.sum(),
            hist.min().unwrap_or(0),
            hist.max().unwrap_or(0),
            hist.quantile(0.50).unwrap_or(0),
            hist.quantile(0.95).unwrap_or(0),
            hist.quantile(0.99).unwrap_or(0),
        );
    }
    out.push_str("}}");
    out
}

/// Checks that `line` is one well-formed JSON value (object, array,
/// string, number, bool or null) with nothing trailing. A minimal
/// recursive-descent scanner — enough for `monitor-smoke` to reject
/// torn or malformed snapshot lines without a JSON dependency.
///
/// # Errors
///
/// Returns a byte-offset-annotated description of the first syntax
/// error.
pub fn validate_json_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    scan_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn scan_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => scan_sequence(bytes, pos, b'}', true),
        Some(b'[') => scan_sequence(bytes, pos, b']', false),
        Some(b'"') => scan_string(bytes, pos),
        Some(b't') => scan_literal(bytes, pos, "true"),
        Some(b'f') => scan_literal(bytes, pos, "false"),
        Some(b'n') => scan_literal(bytes, pos, "null"),
        Some(b'-' | b'0'..=b'9') => scan_number(bytes, pos),
        Some(other) => Err(format!("unexpected byte {:?} at {}", *other as char, *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

/// Scans `{"k":v,...}` (object, `keyed = true`) or `[v,...]` (array).
fn scan_sequence(bytes: &[u8], pos: &mut usize, close: u8, keyed: bool) -> Result<(), String> {
    *pos += 1; // opening delimiter
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&close) {
        *pos += 1;
        return Ok(());
    }
    loop {
        if keyed {
            skip_ws(bytes, pos);
            scan_string(bytes, pos)?;
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", *pos));
            }
            *pos += 1;
        }
        skip_ws(bytes, pos);
        scan_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(&b) if b == close => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or close at byte {}", *pos)),
        }
    }
}

fn scan_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2, // escape: skip the escaped byte
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn scan_literal(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn scan_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while bytes.get(*pos).is_some_and(|b| {
        if b.is_ascii_digit() {
            saw_digit = true;
        }
        b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
    }) {
        *pos += 1;
    }
    if saw_digit {
        Ok(())
    } else {
        Err(format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::obs::telemetry::Telemetry;

    /// Builds a pair of snapshots from a private registry (never the
    /// global one — unit tests run concurrently with campaign tests).
    fn sample_snapshots() -> (TelemetrySnapshot, TelemetrySnapshot) {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        shard.add(Counter::TrialsScheduled, 1000);
        shard.add(Counter::TrialsCorrect, 200);
        let prev = telemetry.snapshot();
        shard.add(Counter::TrialsCorrect, 230);
        shard.add(Counter::TrialsDetected, 20);
        shard.add(Counter::ChunksClaimed, 9);
        shard.add(Counter::ChunksCompleted, 6);
        shard.add(Counter::PatternRuns, 100);
        shard.add(Counter::VariantsExecuted, 300);
        shard.add(Counter::VariantsSkipped, 200);
        shard.observe_ns(Timer::TrialNs, 40_000);
        shard.observe_ns(Timer::TrialNs, 90_000);
        (prev, telemetry.snapshot())
    }

    #[test]
    fn progress_line_reports_rate_eta_and_saved_work() {
        let (prev, cur) = sample_snapshots();
        let line = progress_line(&prev, &cur, Duration::from_secs(1));
        assert!(line.starts_with("[monitor] 450/1000 trials"), "{line}");
        assert!(line.contains("250 trials/s"), "{line}");
        // 550 remaining at 250/s -> 2.2s.
        assert!(line.contains("eta 2.2s"), "{line}");
        assert!(line.contains("busy 3"), "{line}");
        assert!(line.contains("saved 40.0%"), "{line}");
        assert!(!line.contains("chaos"), "no chaos counters: {line}");
    }

    #[test]
    fn progress_line_handles_idle_and_finished_campaigns() {
        let telemetry = Telemetry::new();
        let empty = telemetry.snapshot();
        let line = progress_line(&empty, &empty, Duration::from_millis(500));
        assert!(line.starts_with("[monitor] 0/0 trials"), "{line}");
        assert!(!line.contains("eta"), "no ETA with no rate: {line}");
    }

    #[test]
    fn progress_line_falls_back_to_service_requests() {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        shard.add(Counter::ServiceArrivals, 500);
        shard.add(Counter::ServiceAdmitted, 450);
        let prev = telemetry.snapshot();
        shard.add(Counter::ServiceArrivals, 500);
        shard.add(Counter::ServiceAdmitted, 530);
        shard.add(Counter::ServiceOk, 880);
        shard.add(Counter::ServiceFailed, 10);
        shard.add(Counter::ServiceDeadlineExceeded, 10);
        shard.add(Counter::ServiceRejected, 20);
        shard.add(Counter::ServiceEnqueued, 40);
        shard.add(Counter::ServiceDequeued, 35);
        shard.add(Counter::ServiceHedgesFired, 60);
        shard.add(Counter::ServiceHedgesWon, 12);
        let cur = telemetry.snapshot();
        let line = progress_line(&prev, &cur, Duration::from_secs(1));
        assert!(line.starts_with("[monitor] 920/1000 requests"), "{line}");
        assert!(line.contains("920 requests/s"), "{line}");
        assert!(line.contains("inflight 80"), "{line}");
        assert!(line.contains("queued 5"), "{line}");
        assert!(line.contains("hedges 60f/12w"), "{line}");
        assert!(line.contains("shed 20"), "{line}");
        assert!(
            !line.contains("breakers"),
            "no breaker segment while nothing tripped: {line}"
        );
        shard.add(Counter::ServiceBreakerOpens, 4);
        shard.add(Counter::ServiceBreakerCloses, 3);
        let cur = telemetry.snapshot();
        let line = progress_line(&prev, &cur, Duration::from_secs(1));
        assert!(line.contains("breakers 4o/3c"), "{line}");
    }

    #[test]
    fn snapshot_json_lines_validate_and_carry_every_counter() {
        let (prev, cur) = sample_snapshots();
        let line = snapshot_json(
            &cur,
            Duration::from_millis(1500),
            Duration::from_secs(1),
            &prev,
        );
        validate_json_line(&line).expect("snapshot line is valid JSON");
        for counter in Counter::ALL {
            assert!(line.contains(&format!("\"{}\":", counter.name())), "{line}");
        }
        for timer in Timer::ALL {
            assert!(line.contains(&format!("\"{}\":", timer.name())), "{line}");
        }
        assert!(line.contains("\"elapsed_ms\":1500"), "{line}");
        assert!(line.contains("\"trials_per_sec\":250.000"), "{line}");
        assert!(line.contains("\"p95\":256000"), "{line}");
    }

    #[test]
    fn json_validator_accepts_values_and_rejects_torn_lines() {
        for ok in [
            "{}",
            "[]",
            "{\"a\":1,\"b\":[true,null,-2.5e3],\"c\":{\"d\":\"x\\\"y\"}}",
            "  42  ",
            "\"lone string\"",
        ] {
            validate_json_line(ok).unwrap_or_else(|e| panic!("{ok:?}: {e}"));
        }
        for bad in [
            "{\"a\":1",
            "{\"a\" 1}",
            "{a:1}",
            "[1,]",
            "tru",
            "{} trailing",
            "\"unterminated",
            "-",
            "",
        ] {
            assert!(validate_json_line(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn compact_and_seconds_formats() {
        assert_eq!(fmt_compact(0.0), "0");
        assert_eq!(fmt_compact(950.0), "950");
        assert_eq!(fmt_compact(12_345.0), "12.3k");
        assert_eq!(fmt_compact(3_200_000.0), "3.2M");
        assert_eq!(fmt_seconds(0.85), "850ms");
        assert_eq!(fmt_seconds(12.34), "12.3s");
        assert_eq!(fmt_seconds(248.0), "4m08s");
    }
}
