//! Batch-adjudication invariance: the branchless back-end is an
//! implementation detail, never an observable.
//!
//! One test, alone in its own integration binary: it flips the
//! process-global batch toggle
//! ([`redundancy_core::adjudicator::batch::set_enabled`]), and sharing
//! that with other tests in the same process would race their routing.
//!
//! The contract under test: an Exhaustive N-version campaign — pattern
//! engines adjudicating through `adjudicate_batch_row`, traced, at any
//! `--jobs` — produces a bit-identical [`TrialSummary`] and a
//! byte-identical merged event stream whether the batch kernels are
//! engaged or the scalar voters run. The batch path may only change how
//! fast verdicts are computed, never what they are.

use std::sync::Arc;

use redundancy_core::adjudicator::batch;
use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::context::ExecContext;
use redundancy_core::obs::CollectorObserver;
use redundancy_core::outcome::VariantFailure;
use redundancy_core::patterns::{DecisionPolicy, ParallelEvaluation};
use redundancy_core::variant::FnVariant;
use redundancy_sim::{Campaign, TrialOutcome, TrialSummary};

const TRIALS: usize = 400;
const SEED: u64 = 0xba7c_4ad9 ^ 0x5eed_2008;

/// An N-version trial: three seed-noisy variants (one of which crashes
/// on some draws) under majority vote, Exhaustive policy — the exact
/// shape that routes through the batch row kernel.
fn nvp_trial(ctx: &mut ExecContext, _seed: u64, _i: usize) -> TrialOutcome {
    let variant = |name: &'static str,
                   work: u64,
                   bias: u64|
     -> Box<dyn redundancy_core::variant::Variant<u64, u64>> {
        Box::new(FnVariant::new(
            name,
            move |x: &u64, ctx: &mut ExecContext| {
                ctx.charge(work).map_err(|_| VariantFailure::Timeout)?;
                let draw = ctx.rng().next_u64();
                if draw % 11 == bias % 11 {
                    return Err(VariantFailure::crash("injected"));
                }
                // Mostly agreeing outputs with occasional silent deviation.
                Ok(x * 10 + u64::from(draw % 17 == 0))
            },
        ))
    };
    let engine = ParallelEvaluation::new(MajorityVoter::new())
        .with_policy(DecisionPolicy::Exhaustive)
        .with_variant(variant("v0", 10, 0))
        .with_variant(variant("v1", 12, 3))
        .with_variant(variant("v2", 15, 7));
    let report = engine.run(&4, ctx);
    let cost = report.cost;
    match report.into_output() {
        Some(40) => TrialOutcome::Correct { cost },
        Some(_) => TrialOutcome::Undetected { cost },
        None => TrialOutcome::Detected { cost },
    }
}

/// Runs the traced campaign at one worker count, returning the summary
/// and the full merged event stream.
fn run_traced(jobs: usize) -> (TrialSummary, Vec<redundancy_core::obs::Event>) {
    let campaign = Campaign::new(TRIALS);
    let sink = Arc::new(CollectorObserver::new());
    let summary = campaign.run_traced_parallel(SEED, jobs, sink.clone(), nvp_trial);
    (summary, sink.take())
}

#[test]
fn batch_toggle_never_changes_summaries_or_streams() {
    let mut reference: Option<(TrialSummary, Vec<redundancy_core::obs::Event>)> = None;
    for enabled in [true, false] {
        batch::set_enabled(enabled);
        for jobs in [1usize, 2, 8] {
            let (summary, events) = run_traced(jobs);
            assert!(!events.is_empty(), "campaign must trace");
            match &reference {
                None => reference = Some((summary, events)),
                Some((ref_summary, ref_events)) => {
                    assert_eq!(
                        ref_summary, &summary,
                        "summary diverged: batch={enabled}, jobs={jobs}"
                    );
                    assert_eq!(
                        ref_events, &events,
                        "event stream diverged: batch={enabled}, jobs={jobs}"
                    );
                }
            }
        }
    }
    batch::set_enabled(true);
}
