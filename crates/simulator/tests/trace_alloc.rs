//! Zero-allocation guarantee for the steady-state traced hot path.
//!
//! One test, alone in its own integration binary: it installs a counting
//! `#[global_allocator]`, and sharing the process with other tests would
//! let their allocations race the measurement.
//!
//! The contract under test: once the per-worker arena, the shard pool,
//! and the ring sink are warm, recording a traced trial — check out a
//! pooled buffer, open spans, emit points, close spans, take the shard,
//! stream it through the merger into the sink, check the buffer back
//! in — performs **zero** heap allocations. Every dynamic string is an
//! interned [`Symbol`], every event is `Copy`, the span-id allocator is
//! pooled with the arena, and the in-order merge path never touches the
//! pending map.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use redundancy_core::obs::{
    with_worker_arena, CostSnapshot, Observer, Point, RingBufferObserver, ShardPool, SpanKind,
    SpanStatus, StreamingMerger, Symbol,
};

/// Counts every allocation and reallocation made while the *current
/// thread* is inside the measured window. The filter matters: libtest's
/// harness thread allocates at its own pace, and a process-wide count
/// would race it. Frees are not interesting here (a path that frees
/// without allocating cannot leak allocations into the steady state).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether this thread's allocations are being measured.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

fn count_one() {
    // `try_with` never initializes a destroyed TLS slot; a thread that is
    // tearing down simply stops counting.
    if MEASURING.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Events each traced trial records (trial span + variant span + one
/// point = 2 begins, 1 point, 2 ends).
const EVENTS_PER_TRIAL: u64 = 5;

/// One steady-state traced trial, exactly as the campaign driver runs
/// it at jobs=1: pooled buffer in, spans and points recorded through
/// the arena handle, shard taken and streamed to the sink in order.
fn traced_trial(
    i: usize,
    variant: Symbol,
    rule: Symbol,
    pool: &ShardPool,
    merger: &StreamingMerger,
) {
    let events = with_worker_arena(|arena| {
        let shard = arena.collector();
        shard.install_buffer(pool.check_out());
        let mut handle = arena.handle();
        let trial = handle.begin_span(0, || SpanKind::Trial {
            index: i as u64,
            seed: i as u64,
        });
        let var = handle.begin_span(1, || SpanKind::Variant { name: variant });
        handle.emit(2, || Point::Workaround {
            rule,
            applied: true,
        });
        handle.end_span(var, 3, SpanStatus::Ok, CostSnapshot::ZERO);
        handle.end_span(
            trial,
            4,
            SpanStatus::Trial {
                disposition: "correct",
            },
            CostSnapshot::ZERO,
        );
        shard.take()
    });
    merger.submit(i, events);
}

#[test]
fn steady_state_traced_path_allocates_zero_per_event() {
    // Interned before measurement: symbols are a one-time cost by design.
    let variant = Symbol::intern("alloc-test-variant");
    let rule = Symbol::intern("alloc-test-rule");

    let pool = Arc::new(ShardPool::new());
    let sink = RingBufferObserver::shared(64);
    let merger =
        StreamingMerger::new(sink.clone() as Arc<dyn Observer>).with_pool(Arc::clone(&pool));

    // Warmup: arena creation, first buffer growth, ring fill, telemetry
    // thread-locals — every one-time cost the steady state amortizes.
    const WARMUP: usize = 32;
    const MEASURED: usize = 512;
    for i in 0..WARMUP {
        traced_trial(i, variant, rule, &pool, &merger);
    }

    MEASURING.with(|m| m.set(true));
    for i in WARMUP..WARMUP + MEASURED {
        traced_trial(i, variant, rule, &pool, &merger);
    }
    MEASURING.with(|m| m.set(false));
    let measured_allocations = ALLOCATIONS.load(Ordering::Relaxed);

    // Sanity: the events actually flowed end to end.
    assert_eq!(merger.forwarded(), WARMUP + MEASURED);
    assert_eq!(sink.len(), sink.capacity());
    assert_eq!(
        sink.dropped(),
        (WARMUP + MEASURED) as u64 * EVENTS_PER_TRIAL - sink.capacity() as u64
    );

    assert_eq!(
        measured_allocations,
        0,
        "steady-state traced path must not allocate \
         ({MEASURED} trials, {} events)",
        MEASURED as u64 * EVENTS_PER_TRIAL
    );
}
