//! Flight-recorder invariance: telemetry is an observer, never an actor.
//!
//! One test, alone in its own integration binary: it drives the
//! process-global [`Telemetry`] registry, and sharing that with other
//! tests in the same process would race on `reset`/`set_enabled`.
//!
//! The contract under test is two-sided. Campaign results must be
//! bit-identical with telemetry (and the live monitor) on or off at any
//! `--jobs`; and the *scheduling-invariant* telemetry totals — trials
//! scheduled, the three outcome counters, trials forwarded by the
//! streaming merger — must be identical for `--jobs` 1, 2 and 8. Chunk
//! and stall counters are intentionally excluded: chunk sizing adapts to
//! the worker count, so those totals legitimately vary.

use std::sync::Arc;
use std::time::Duration;

use redundancy_core::context::ExecContext;
use redundancy_core::cost::Cost;
use redundancy_core::obs::telemetry::{Counter, Telemetry};
use redundancy_core::obs::{CollectorObserver, SpanKind, SpanStatus};
use redundancy_sim::{Campaign, CampaignMonitor, MonitorConfig, TrialOutcome};

const TRIALS: usize = 600;
const SEED: u64 = 0x0b5e_07a1 ^ 0x5eed_2008;

fn classify(draw: u64) -> TrialOutcome {
    let cost = Cost::of_invocation(1, draw % 100);
    match draw % 20 {
        0 => TrialOutcome::Undetected { cost },
        1..=3 => TrialOutcome::Detected { cost },
        _ => TrialOutcome::Correct { cost },
    }
}

fn traced_trial(ctx: &mut ExecContext, _seed: u64, _i: usize) -> TrialOutcome {
    let span = ctx.obs_begin(|| SpanKind::Scope { name: "work" });
    let draw = ctx.rng().next_u64();
    ctx.obs_end(span, SpanStatus::Ok, Cost::ZERO.snapshot());
    classify(draw)
}

/// The telemetry totals that must not depend on the worker count.
fn invariant_counters(telemetry: &Telemetry) -> Vec<(Counter, u64)> {
    let snapshot = telemetry.snapshot();
    [
        Counter::TrialsScheduled,
        Counter::TrialsCorrect,
        Counter::TrialsUndetected,
        Counter::TrialsDetected,
        Counter::MergerTrialsForwarded,
    ]
    .into_iter()
    .map(|counter| (counter, snapshot.counter(counter)))
    .collect()
}

#[test]
fn telemetry_and_monitor_never_change_results_and_totals_are_jobs_invariant() {
    let campaign = Campaign::new(TRIALS);
    let telemetry = Telemetry::global();

    // Reference run with the recorder off.
    telemetry.set_enabled(false);
    let reference_sink = Arc::new(CollectorObserver::new());
    let reference = campaign.run_traced(SEED, reference_sink.clone(), traced_trial);
    let reference_events = reference_sink.take();
    assert!(!reference_events.is_empty());
    assert_eq!(reference.reliability.trials, TRIALS);

    // With the recorder on, every jobs count must reproduce the
    // reference bit-for-bit and accumulate identical invariant totals.
    let mut totals_per_jobs = Vec::new();
    for jobs in [1usize, 2, 8] {
        telemetry.reset();
        telemetry.set_enabled(true);

        let untraced = campaign.run_parallel(SEED, jobs, |seed, _i| {
            classify(ExecContext::new(seed).rng().next_u64())
        });
        assert_eq!(reference, untraced, "untraced summary for jobs={jobs}");

        let sink = Arc::new(CollectorObserver::new());
        let traced = campaign.run_traced_parallel(SEED, jobs, sink.clone(), traced_trial);
        assert_eq!(reference, traced, "traced summary for jobs={jobs}");
        assert_eq!(
            reference_events,
            sink.take(),
            "event stream for jobs={jobs}"
        );

        let totals = invariant_counters(telemetry);
        let scheduled = totals[0].1;
        assert_eq!(
            scheduled,
            2 * TRIALS as u64,
            "both campaigns schedule all trials at jobs={jobs}"
        );
        totals_per_jobs.push((jobs, totals));
        telemetry.set_enabled(false);
    }
    let (_, baseline_totals) = &totals_per_jobs[0];
    for (jobs, totals) in &totals_per_jobs[1..] {
        assert_eq!(
            baseline_totals, totals,
            "invariant telemetry totals changed between jobs=1 and jobs={jobs}"
        );
    }

    // The full monitor (sampler thread included) must not perturb the
    // stream either.
    let monitor = CampaignMonitor::start(MonitorConfig {
        interval: Duration::from_millis(5),
        live: false,
        prometheus_path: None,
        jsonl_path: None,
    });
    let sink = Arc::new(CollectorObserver::new());
    let monitored = campaign.run_traced_parallel(SEED, 4, sink.clone(), traced_trial);
    monitor.stop();
    assert_eq!(reference, monitored, "summary with monitor running");
    assert_eq!(reference_events, sink.take(), "stream with monitor running");
}
