//! The structured event model: spans, points, and cost snapshots.
//!
//! Everything the instrumented stack reports flows through [`Event`]s. An
//! event is either the start of a [`Span`] (a nested region of execution:
//! a trial, a technique invocation, a pattern run, one variant execution),
//! the end of a span (carrying its [`SpanStatus`] and the [`CostSnapshot`]
//! it consumed), or a [`Point`] — an instantaneous technique-specific
//! occurrence such as a checkpoint, a rollback, a rejuvenation or a
//! service rebind.
//!
//! The model is deliberately dependency-free: failure kinds and rejection
//! reasons are carried as `&'static str` labels (produced by
//! `VariantFailure::kind()` and `RejectionReason::kind()` upstream), so
//! this crate can sit *below* `redundancy-core` in the dependency graph
//! and every layer of the stack can emit events.

use crate::intern::Symbol;

/// Identifier of a span. `0` is the root (no enclosing span); real spans
/// get ids from 1 upwards, allocated deterministically per context tree.
pub type SpanId = u64;

/// The root span id: events outside any span belong to it.
pub const ROOT_SPAN: SpanId = 0;

/// A dependency-free snapshot of an execution cost (mirrors
/// `redundancy_core::cost::Cost`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostSnapshot {
    /// Work units consumed (the fuel/SimClock currency).
    pub work_units: u64,
    /// Virtual nanoseconds elapsed (SimClock ticks).
    pub virtual_ns: u64,
    /// Variant invocations performed.
    pub invocations: u64,
    /// Development-time cost charged (number of variant designs).
    pub design_cost: f64,
}

impl CostSnapshot {
    /// The zero cost.
    pub const ZERO: CostSnapshot = CostSnapshot {
        work_units: 0,
        virtual_ns: 0,
        invocations: 0,
        design_cost: 0.0,
    };
}

/// What kind of execution region a span covers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanKind {
    /// One Monte-Carlo trial of a campaign.
    Trial {
        /// Trial index within the campaign.
        index: u64,
        /// The derived per-trial seed.
        seed: u64,
    },
    /// One invocation of a named fault-handling technique.
    Technique {
        /// Technique label (e.g. `"n-version"`, `"recovery-blocks"`).
        name: &'static str,
    },
    /// One run of a Figure-1 pattern engine.
    Pattern {
        /// `"parallel_evaluation"`, `"parallel_selection"` or
        /// `"sequential_alternatives"`.
        name: &'static str,
    },
    /// One contained variant execution.
    Variant {
        /// The variant's name (interned: copying is four bytes).
        name: Symbol,
    },
    /// A generic named region (service invocation, GP search, ...).
    Scope {
        /// Region label.
        name: &'static str,
    },
}

impl SpanKind {
    /// Short label for rendering.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SpanKind::Trial { index, seed } => format!("trial #{index} (seed {seed:#x})"),
            SpanKind::Technique { name } => format!("technique {name}"),
            SpanKind::Pattern { name } => format!("pattern {name}"),
            SpanKind::Variant { name } => format!("variant {name}"),
            SpanKind::Scope { name } => format!("scope {name}"),
        }
    }
}

/// How a span concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanStatus {
    /// The region completed normally (no adjudication involved).
    Ok,
    /// An adjudicator accepted an output with this support/dissent split.
    Accepted {
        /// Outcomes agreeing with the accepted output.
        support: usize,
        /// Outcomes disagreeing or failed.
        dissent: usize,
    },
    /// An adjudicator rejected every candidate.
    Rejected {
        /// `RejectionReason::kind()` label.
        reason: &'static str,
    },
    /// The region failed detectably.
    Failed {
        /// `VariantFailure::kind()` label (`crash`, `timeout`, ...).
        kind: &'static str,
    },
    /// A trial concluded with this disposition: `"correct"`,
    /// `"undetected"` or `"detected"`.
    Trial {
        /// The trial disposition label.
        disposition: &'static str,
    },
}

impl SpanStatus {
    /// Short label for rendering.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SpanStatus::Ok => "ok".to_owned(),
            SpanStatus::Accepted { support, dissent } => {
                format!("accepted {support}:{dissent}")
            }
            SpanStatus::Rejected { reason } => format!("rejected ({reason})"),
            SpanStatus::Failed { kind } => format!("failed ({kind})"),
            SpanStatus::Trial { disposition } => (*disposition).to_owned(),
        }
    }
}

/// An instantaneous, technique-specific occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Point {
    /// An adjudicator produced a verdict.
    Verdict {
        /// Whether an output was accepted.
        accepted: bool,
        /// Outcomes supporting the accepted output (0 when rejected).
        support: usize,
        /// Outcomes dissenting (0 when rejected).
        dissent: usize,
        /// Rejection reason label when rejected.
        rejection: Option<&'static str>,
    },
    /// A fuel budget ran out (the simulated hang/watchdog event).
    FuelExhausted {
        /// Work units consumed by the hung execution.
        consumed: u64,
    },
    /// A checkpoint of recoverable state was taken.
    Checkpoint {
        /// What was checkpointed.
        label: &'static str,
    },
    /// State was rolled back to the last checkpoint.
    Rollback {
        /// What was rolled back.
        label: &'static str,
    },
    /// A component was rejuvenated (aging state reset).
    Rejuvenation {
        /// Age counter before the reset.
        age_before: u64,
    },
    /// A component (or component subtree) was rebooted.
    Reboot {
        /// Component name (interned).
        component: Symbol,
        /// Reboot escalation depth (0 = leaf micro-reboot).
        depth: u32,
    },
    /// A service call was rebound to a different provider.
    ServiceRebind {
        /// Interface being served (interned).
        interface: Symbol,
        /// Provider that failed (empty for the initial binding).
        from: Symbol,
        /// Provider now serving.
        to: Symbol,
    },
    /// A retry block re-expressed its input.
    Reexpression {
        /// Re-expression name (interned).
        name: Symbol,
        /// Retry attempt number (1 = first re-expression).
        attempt: u32,
    },
    /// The environment was perturbed before a re-execution (RX).
    Perturbation {
        /// Which knob was changed.
        knob: &'static str,
        /// Re-execution attempt number.
        attempt: u32,
    },
    /// A genetic-programming generation completed.
    GpGeneration {
        /// Generation index.
        generation: u32,
        /// Best fitness in the population (lower is better).
        best_fitness: f64,
    },
    /// Replicated processes diverged (attack or fault detected).
    ReplicaDivergence {
        /// Human-readable description (interned).
        detail: Symbol,
    },
    /// A structure audit ran.
    Audit {
        /// Whether the audit found the structure consistent.
        clean: bool,
        /// Number of inconsistencies found.
        errors: u64,
    },
    /// A robust-structure repair concluded.
    Repair {
        /// Repair outcome label (e.g. `"full"`, `"partial"`,
        /// `"unrepairable"`).
        outcome: &'static str,
    },
    /// A workaround was applied in place of a failing sequence.
    Workaround {
        /// The rewriting rule used (interned).
        rule: Symbol,
        /// Whether the workaround succeeded.
        applied: bool,
    },
    /// A wrapper sanitized or refused an input.
    Sanitized {
        /// What the wrapper did: `"rewritten"`, `"rejected"`, ...
        action: &'static str,
    },
    /// A streaming adjudicator fixed its verdict before every variant
    /// ran (the early-exit point of `DecisionPolicy::Eager`).
    EarlyDecision {
        /// Variants whose outcomes were fed before the verdict fixed.
        executed: usize,
        /// Total variants the pattern holds.
        total: usize,
    },
    /// A straggler variant was cooperatively cancelled after the verdict
    /// was already fixed.
    VariantCancelled {
        /// Name of the cancelled variant (interned).
        variant: Symbol,
    },
    /// Anything else (escape hatch for one-off instrumentation).
    Custom {
        /// Event name.
        name: &'static str,
        /// Free-form detail (interned).
        detail: Symbol,
    },
}

impl Point {
    /// Short machine-friendly label for the point type.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Point::Verdict { .. } => "verdict",
            Point::FuelExhausted { .. } => "fuel_exhausted",
            Point::Checkpoint { .. } => "checkpoint",
            Point::Rollback { .. } => "rollback",
            Point::Rejuvenation { .. } => "rejuvenation",
            Point::Reboot { .. } => "reboot",
            Point::ServiceRebind { .. } => "service_rebind",
            Point::Reexpression { .. } => "reexpression",
            Point::Perturbation { .. } => "perturbation",
            Point::GpGeneration { .. } => "gp_generation",
            Point::ReplicaDivergence { .. } => "replica_divergence",
            Point::Audit { .. } => "audit",
            Point::Repair { .. } => "repair",
            Point::Workaround { .. } => "workaround",
            Point::Sanitized { .. } => "sanitized",
            Point::EarlyDecision { .. } => "early-decision",
            Point::VariantCancelled { .. } => "variant-cancelled",
            Point::Custom { name, .. } => name,
        }
    }
}

/// What an event reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A span began. The event's `span` field is the new span's id; the
    /// `parent` field is the enclosing span.
    SpanStart {
        /// What region the span covers.
        kind: SpanKind,
    },
    /// A span ended (the event's `span` field names it).
    SpanEnd {
        /// How it concluded.
        status: SpanStatus,
        /// Cost consumed by the span.
        cost: CostSnapshot,
    },
    /// An instantaneous occurrence inside the event's `span`.
    Point(Point),
}

/// One record in an execution trace.
///
/// Since every payload label is either `&'static str` or an interned
/// [`Symbol`], `Event` is plain-old-data: it derives [`Copy`], so
/// recording, cloning and merging events never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Global sequence number, assigned by the observer at record time.
    pub seq: u64,
    /// The span this event belongs to (for `SpanStart`: the new span).
    pub span: SpanId,
    /// The enclosing span (same as `span` except for `SpanStart`).
    pub parent: SpanId,
    /// Context-local virtual time (SimClock ns) at emission.
    pub clock: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_nonempty() {
        let kinds = [
            SpanKind::Trial { index: 1, seed: 2 },
            SpanKind::Technique { name: "nvp" },
            SpanKind::Pattern {
                name: "parallel_evaluation",
            },
            SpanKind::Variant { name: "v1".into() },
            SpanKind::Scope { name: "gp" },
        ];
        for k in kinds {
            assert!(!k.label().is_empty());
        }
        let statuses = [
            SpanStatus::Ok,
            SpanStatus::Accepted {
                support: 2,
                dissent: 1,
            },
            SpanStatus::Rejected {
                reason: "no_quorum",
            },
            SpanStatus::Failed { kind: "crash" },
            SpanStatus::Trial {
                disposition: "correct",
            },
        ];
        for s in statuses {
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn point_names_are_stable() {
        assert_eq!(Point::Checkpoint { label: "proc" }.name(), "checkpoint");
        assert_eq!(
            Point::Custom {
                name: "my_event",
                detail: Symbol::intern("")
            }
            .name(),
            "my_event"
        );
    }
}
