//! Exporters: span-tree rendering, trace summaries, and JSON-lines.
//!
//! All exporters consume a flat `&[Event]` slice (as produced by
//! [`RingBufferObserver::events`](crate::RingBufferObserver::events)) and
//! are tolerant of truncated traces: a ring buffer that wrapped may have
//! lost the starts of old spans, and the renderers degrade gracefully.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::event::{CostSnapshot, Event, EventKind, SpanId, SpanStatus, ROOT_SPAN};

/// Renders a trace as an indented span tree, one line per event.
///
/// Span starts open an indent level, span ends close it (annotated with
/// status and cost), points render as `•` leaves. Events whose span start
/// was lost to ring-buffer wraparound render at the root level.
#[must_use]
pub fn render_span_tree(events: &[Event]) -> String {
    let mut out = String::new();
    // Depth of each known open span; root is depth 0.
    let mut depth: BTreeMap<SpanId, usize> = BTreeMap::new();
    depth.insert(ROOT_SPAN, 0);
    for event in events {
        match &event.kind {
            EventKind::SpanStart { kind } => {
                let d = depth.get(&event.parent).copied().unwrap_or(0);
                depth.insert(event.span, d + 1);
                let _ = writeln!(
                    out,
                    "{:indent$}▶ {} [span {} @{}]",
                    "",
                    kind.label(),
                    event.span,
                    event.clock,
                    indent = d * 2
                );
            }
            EventKind::SpanEnd { status, cost } => {
                let d = depth.remove(&event.span).map_or(0, |d| d.saturating_sub(1));
                let _ = writeln!(
                    out,
                    "{:indent$}◀ {} [span {} @{}] ticks={} fuel={} inv={}",
                    "",
                    status.label(),
                    event.span,
                    event.clock,
                    cost.virtual_ns,
                    cost.work_units,
                    cost.invocations,
                    indent = d * 2
                );
            }
            EventKind::Point(point) => {
                let d = depth.get(&event.span).copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{:indent$}• {} @{}",
                    "",
                    point.name(),
                    event.clock,
                    indent = d * 2
                );
            }
        }
    }
    out
}

/// Aggregate view of a trace: event/span counts, verdict tallies, failure
/// and point breakdowns, and total cost across top-level spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events summarized.
    pub events: usize,
    /// Spans that both started and ended inside the trace.
    pub spans_closed: usize,
    /// Spans started but never ended (trace truncated or still running).
    pub spans_open: usize,
    /// Accepted adjudications (from span statuses and verdict points).
    pub accepted: usize,
    /// Rejected adjudications, keyed by rejection reason.
    pub rejected: BTreeMap<&'static str, usize>,
    /// Failed spans, keyed by failure kind.
    pub failed: BTreeMap<&'static str, usize>,
    /// Point events, keyed by point name.
    pub points: BTreeMap<&'static str, usize>,
    /// Summed cost of spans that ended with no enclosing span in-trace
    /// (i.e. the roots actually covered by this trace).
    pub total_cost: CostSnapshot,
}

impl TraceSummary {
    /// Summarizes a flat event slice.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut summary = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        let mut open: BTreeMap<SpanId, SpanId> = BTreeMap::new(); // span -> parent
        for event in events {
            match &event.kind {
                EventKind::SpanStart { .. } => {
                    open.insert(event.span, event.parent);
                }
                EventKind::SpanEnd { status, cost } => {
                    let parent = open.remove(&event.span);
                    if parent.is_some() {
                        summary.spans_closed += 1;
                    }
                    // Only roots (parent not itself inside an open span we
                    // know about) contribute to the total, so nested costs
                    // are not double counted.
                    let parent_open = parent.is_some_and(|p| open.contains_key(&p));
                    if !parent_open {
                        summary.total_cost.work_units += cost.work_units;
                        summary.total_cost.virtual_ns += cost.virtual_ns;
                        summary.total_cost.invocations += cost.invocations;
                        summary.total_cost.design_cost += cost.design_cost;
                    }
                    match status {
                        SpanStatus::Accepted { .. } => summary.accepted += 1,
                        SpanStatus::Rejected { reason } => {
                            *summary.rejected.entry(reason).or_insert(0) += 1;
                        }
                        SpanStatus::Failed { kind } => {
                            *summary.failed.entry(kind).or_insert(0) += 1;
                        }
                        SpanStatus::Ok | SpanStatus::Trial { .. } => {}
                    }
                }
                EventKind::Point(point) => {
                    *summary.points.entry(leak_free_name(point)).or_insert(0) += 1;
                }
            }
        }
        summary.spans_open = open.len();
        summary
    }
}

/// `Point::name()` returns `&'static str` for every builtin point; custom
/// points carry their own static name. This helper just documents that no
/// leaking is involved.
fn leak_free_name(point: &crate::event::Point) -> &'static str {
    point.name()
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events, {} spans closed, {} open",
            self.events, self.spans_closed, self.spans_open
        )?;
        writeln!(
            f,
            "cost:  ticks={} fuel={} invocations={} design={:.1}",
            self.total_cost.virtual_ns,
            self.total_cost.work_units,
            self.total_cost.invocations,
            self.total_cost.design_cost
        )?;
        write!(f, "adjudication: {} accepted", self.accepted)?;
        for (reason, n) in &self.rejected {
            write!(f, ", {n} rejected ({reason})")?;
        }
        for (kind, n) in &self.failed {
            write!(f, ", {n} failed ({kind})")?;
        }
        writeln!(f)?;
        if !self.points.is_empty() {
            write!(f, "points:")?;
            for (name, n) in &self.points {
                write!(f, " {name}={n}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Convenience: summarize and render in one call (what `--trace` prints).
#[must_use]
pub fn summary(events: &[Event]) -> String {
    TraceSummary::from_events(events).to_string()
}

#[cfg(feature = "serde")]
pub use self::jsonl::{event_from_json, event_to_json, from_jsonl, to_jsonl, ParseError};

#[cfg(feature = "serde")]
mod jsonl {
    //! Hand-rolled JSON-lines serialization (the workspace builds offline,
    //! with no real serde available; the output is plain JSON regardless).

    use std::fmt::Write as _;

    use crate::event::{CostSnapshot, Event, EventKind, Point, SpanKind, SpanStatus};

    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn span_kind_json(kind: &SpanKind, out: &mut String) {
        match kind {
            SpanKind::Trial { index, seed } => {
                let _ = write!(out, "{{\"trial\":{{\"index\":{index},\"seed\":{seed}}}}}");
            }
            SpanKind::Technique { name } => {
                out.push_str("{\"technique\":");
                escape(name, out);
                out.push('}');
            }
            SpanKind::Pattern { name } => {
                out.push_str("{\"pattern\":");
                escape(name, out);
                out.push('}');
            }
            SpanKind::Variant { name } => {
                out.push_str("{\"variant\":");
                escape(name.resolve(), out);
                out.push('}');
            }
            SpanKind::Scope { name } => {
                out.push_str("{\"scope\":");
                escape(name, out);
                out.push('}');
            }
        }
    }

    fn status_json(status: &SpanStatus, out: &mut String) {
        match status {
            SpanStatus::Ok => out.push_str("{\"ok\":true}"),
            SpanStatus::Accepted { support, dissent } => {
                let _ = write!(
                    out,
                    "{{\"accepted\":{{\"support\":{support},\"dissent\":{dissent}}}}}"
                );
            }
            SpanStatus::Rejected { reason } => {
                out.push_str("{\"rejected\":");
                escape(reason, out);
                out.push('}');
            }
            SpanStatus::Failed { kind } => {
                out.push_str("{\"failed\":");
                escape(kind, out);
                out.push('}');
            }
            SpanStatus::Trial { disposition } => {
                out.push_str("{\"trial\":");
                escape(disposition, out);
                out.push('}');
            }
        }
    }

    fn point_json(point: &Point, out: &mut String) {
        out.push_str("{\"name\":");
        escape(point.name(), out);
        match point {
            Point::Verdict {
                accepted,
                support,
                dissent,
                rejection,
            } => {
                let _ = write!(
                    out,
                    ",\"accepted\":{accepted},\"support\":{support},\"dissent\":{dissent}"
                );
                if let Some(reason) = rejection {
                    out.push_str(",\"rejection\":");
                    escape(reason, out);
                }
            }
            Point::FuelExhausted { consumed } => {
                let _ = write!(out, ",\"consumed\":{consumed}");
            }
            Point::Checkpoint { label } | Point::Rollback { label } => {
                out.push_str(",\"label\":");
                escape(label, out);
            }
            Point::Rejuvenation { age_before } => {
                let _ = write!(out, ",\"age_before\":{age_before}");
            }
            Point::Reboot { component, depth } => {
                out.push_str(",\"component\":");
                escape(component.resolve(), out);
                let _ = write!(out, ",\"depth\":{depth}");
            }
            Point::ServiceRebind {
                interface,
                from,
                to,
            } => {
                out.push_str(",\"interface\":");
                escape(interface.resolve(), out);
                out.push_str(",\"from\":");
                escape(from.resolve(), out);
                out.push_str(",\"to\":");
                escape(to.resolve(), out);
            }
            Point::Reexpression { name, attempt } => {
                out.push_str(",\"reexpression\":");
                escape(name.resolve(), out);
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            Point::Perturbation { knob, attempt } => {
                out.push_str(",\"knob\":");
                escape(knob, out);
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            Point::GpGeneration {
                generation,
                best_fitness,
            } => {
                let _ = write!(
                    out,
                    ",\"generation\":{generation},\"best_fitness\":{best_fitness}"
                );
            }
            Point::ReplicaDivergence { detail } => {
                out.push_str(",\"detail\":");
                escape(detail.resolve(), out);
            }
            Point::Audit { clean, errors } => {
                let _ = write!(out, ",\"clean\":{clean},\"errors\":{errors}");
            }
            Point::Repair { outcome } => {
                out.push_str(",\"outcome\":");
                escape(outcome, out);
            }
            Point::Workaround { rule, applied } => {
                out.push_str(",\"rule\":");
                escape(rule.resolve(), out);
                let _ = write!(out, ",\"applied\":{applied}");
            }
            Point::Sanitized { action } => {
                out.push_str(",\"action\":");
                escape(action, out);
            }
            Point::EarlyDecision { executed, total } => {
                let _ = write!(out, ",\"executed\":{executed},\"total\":{total}");
            }
            Point::VariantCancelled { variant } => {
                out.push_str(",\"variant\":");
                escape(variant.resolve(), out);
            }
            Point::Custom { detail, .. } => {
                out.push_str(",\"detail\":");
                escape(detail.resolve(), out);
            }
        }
        out.push('}');
    }

    /// Serializes one event as a single JSON object (no trailing newline).
    #[must_use]
    pub fn event_to_json(event: &Event) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"seq\":{},\"span\":{},\"parent\":{},\"clock\":{},",
            event.seq, event.span, event.parent, event.clock
        );
        match &event.kind {
            EventKind::SpanStart { kind } => {
                out.push_str("\"start\":");
                span_kind_json(kind, &mut out);
            }
            EventKind::SpanEnd { status, cost } => {
                out.push_str("\"end\":{\"status\":");
                status_json(status, &mut out);
                let _ = write!(
                    out,
                    ",\"cost\":{{\"work_units\":{},\"virtual_ns\":{},\"invocations\":{},\"design_cost\":{}}}}}",
                    cost.work_units, cost.virtual_ns, cost.invocations, cost.design_cost
                );
            }
            EventKind::Point(point) => {
                out.push_str("\"point\":");
                point_json(point, &mut out);
            }
        }
        out.push('}');
        out
    }

    /// Serializes a trace as JSON-lines: one event object per line.
    #[must_use]
    pub fn to_jsonl(events: &[Event]) -> String {
        let mut out = String::new();
        for event in events {
            out.push_str(&event_to_json(event));
            out.push('\n');
        }
        out
    }

    // ---- parsing: the exact inverse of the serializers above ----

    /// Error from [`event_from_json`] / [`from_jsonl`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        message: String,
    }

    impl ParseError {
        fn new(message: impl Into<String>) -> Self {
            ParseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for ParseError {}

    /// A parsed JSON value. Numbers are kept as raw text and converted
    /// per field, so `u64` values above 2^53 (seeds, span ids) never pass
    /// through `f64` and lose precision.
    enum Json {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        // Event lines never carry arrays, so the payload is unread; it is
        // parsed (not skipped) so malformed nesting is still an error.
        Arr(#[allow(dead_code)] Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn fields(&self, what: &str) -> Result<&[(String, Json)], ParseError> {
            match self {
                Json::Obj(fields) => Ok(fields),
                _ => Err(ParseError::new(format!("{what}: expected an object"))),
            }
        }

        fn str_value(&self, what: &str) -> Result<&str, ParseError> {
            match self {
                Json::Str(s) => Ok(s),
                _ => Err(ParseError::new(format!("{what}: expected a string"))),
            }
        }

        fn bool_value(&self, what: &str) -> Result<bool, ParseError> {
            match self {
                Json::Bool(b) => Ok(*b),
                _ => Err(ParseError::new(format!("{what}: expected a boolean"))),
            }
        }

        fn raw_num(&self, what: &str) -> Result<&str, ParseError> {
            match self {
                Json::Num(raw) => Ok(raw),
                _ => Err(ParseError::new(format!("{what}: expected a number"))),
            }
        }
    }

    struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Cursor<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(ParseError::new(format!(
                    "expected '{}' at byte {}",
                    byte as char, self.pos
                )))
            }
        }

        fn literal(&mut self, word: &str) -> Result<(), ParseError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(())
            } else {
                Err(ParseError::new(format!(
                    "expected '{word}' at byte {}",
                    self.pos
                )))
            }
        }

        fn value(&mut self) -> Result<Json, ParseError> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => {
                    self.literal("true")?;
                    Ok(Json::Bool(true))
                }
                Some(b'f') => {
                    self.literal("false")?;
                    Ok(Json::Bool(false))
                }
                Some(b'n') => {
                    self.literal("null")?;
                    Ok(Json::Null)
                }
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(ParseError::new(format!(
                    "unexpected input at byte {}",
                    self.pos
                ))),
            }
        }

        fn number(&mut self) -> Result<Json, ParseError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(
                self.peek(),
                Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.pos += 1;
            }
            let raw =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ascii");
            if raw.is_empty() {
                return Err(ParseError::new(format!("empty number at byte {start}")));
            }
            Ok(Json::Num(raw.to_owned()))
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(ParseError::new("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self
                            .peek()
                            .ok_or_else(|| ParseError::new("unterminated escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let code = self.hex4()?;
                                let decoded = if (0xd800..0xdc00).contains(&code) {
                                    // High surrogate: a low surrogate
                                    // escape must follow.
                                    self.literal("\\u")?;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(ParseError::new("invalid low surrogate"));
                                    }
                                    char::from_u32(
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00),
                                    )
                                } else {
                                    char::from_u32(code)
                                };
                                out.push(
                                    decoded.ok_or_else(|| ParseError::new("invalid \\u escape"))?,
                                );
                            }
                            other => {
                                return Err(ParseError::new(format!(
                                    "unknown escape '\\{}'",
                                    other as char
                                )))
                            }
                        }
                    }
                    Some(_) => {
                        // Copy the run up to the next quote or escape.
                        // Both delimiters are ASCII, so the slice cannot
                        // split a multi-byte character.
                        let start = self.pos;
                        while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                            self.pos += 1;
                        }
                        let run = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| ParseError::new("invalid utf-8 in string"))?;
                        out.push_str(run);
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, ParseError> {
            let end = self.pos + 4;
            let slice = self
                .bytes
                .get(self.pos..end)
                .ok_or_else(|| ParseError::new("truncated \\u escape"))?;
            let text =
                std::str::from_utf8(slice).map_err(|_| ParseError::new("invalid \\u escape"))?;
            let code =
                u32::from_str_radix(text, 16).map_err(|_| ParseError::new("invalid \\u escape"))?;
            self.pos = end;
            Ok(code)
        }

        fn object(&mut self) -> Result<Json, ParseError> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(ParseError::new(format!(
                            "expected ',' or '}}' at byte {}",
                            self.pos
                        )))
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Json, ParseError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ParseError::new(format!(
                            "expected ',' or ']' at byte {}",
                            self.pos
                        )))
                    }
                }
            }
        }
    }

    fn parse_json(text: &str) -> Result<Json, ParseError> {
        let mut cursor = Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = cursor.value()?;
        cursor.skip_ws();
        if cursor.pos != cursor.bytes.len() {
            return Err(ParseError::new(format!(
                "trailing input at byte {}",
                cursor.pos
            )));
        }
        Ok(value)
    }

    fn field<'j>(fields: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn required<'j>(fields: &'j [(String, Json)], key: &str) -> Result<&'j Json, ParseError> {
        field(fields, key).ok_or_else(|| ParseError::new(format!("missing field \"{key}\"")))
    }

    fn num_field<T: std::str::FromStr>(
        fields: &[(String, Json)],
        key: &str,
    ) -> Result<T, ParseError> {
        let raw = required(fields, key)?.raw_num(key)?;
        raw.parse::<T>()
            .map_err(|_| ParseError::new(format!("field \"{key}\": invalid number {raw:?}")))
    }

    fn str_field<'j>(fields: &'j [(String, Json)], key: &str) -> Result<&'j str, ParseError> {
        required(fields, key)?.str_value(key)
    }

    fn bool_field(fields: &[(String, Json)], key: &str) -> Result<bool, ParseError> {
        required(fields, key)?.bool_value(key)
    }

    /// Interns a label, returning a `&'static str`. The event model
    /// carries technique/pattern/scope names, failure kinds, rejection
    /// reasons and trial dispositions as `&'static str`; parsed events
    /// reconstruct them by leaking each *distinct* label once. The label
    /// vocabulary is small and fixed (compile-time constants upstream),
    /// so the leak is bounded.
    fn intern(label: &str) -> &'static str {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
        let mut set = INTERNED.lock().expect("label interner lock");
        if let Some(existing) = set.get(label) {
            existing
        } else {
            let leaked: &'static str = Box::leak(label.to_owned().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }

    fn span_kind_from(value: &Json) -> Result<SpanKind, ParseError> {
        let fields = value.fields("span kind")?;
        let (key, inner) = fields
            .first()
            .ok_or_else(|| ParseError::new("span kind: empty object"))?;
        match key.as_str() {
            "trial" => {
                let t = inner.fields("trial span")?;
                Ok(SpanKind::Trial {
                    index: num_field(t, "index")?,
                    seed: num_field(t, "seed")?,
                })
            }
            "technique" => Ok(SpanKind::Technique {
                name: intern(inner.str_value("technique")?),
            }),
            "pattern" => Ok(SpanKind::Pattern {
                name: intern(inner.str_value("pattern")?),
            }),
            "variant" => Ok(SpanKind::Variant {
                name: inner.str_value("variant")?.into(),
            }),
            "scope" => Ok(SpanKind::Scope {
                name: intern(inner.str_value("scope")?),
            }),
            other => Err(ParseError::new(format!("unknown span kind \"{other}\""))),
        }
    }

    fn status_from(value: &Json) -> Result<SpanStatus, ParseError> {
        let fields = value.fields("span status")?;
        let (key, inner) = fields
            .first()
            .ok_or_else(|| ParseError::new("span status: empty object"))?;
        match key.as_str() {
            "ok" => Ok(SpanStatus::Ok),
            "accepted" => {
                let a = inner.fields("accepted status")?;
                Ok(SpanStatus::Accepted {
                    support: num_field(a, "support")?,
                    dissent: num_field(a, "dissent")?,
                })
            }
            "rejected" => Ok(SpanStatus::Rejected {
                reason: intern(inner.str_value("rejected")?),
            }),
            "failed" => Ok(SpanStatus::Failed {
                kind: intern(inner.str_value("failed")?),
            }),
            "trial" => Ok(SpanStatus::Trial {
                disposition: intern(inner.str_value("trial")?),
            }),
            other => Err(ParseError::new(format!("unknown span status \"{other}\""))),
        }
    }

    fn point_from(value: &Json) -> Result<Point, ParseError> {
        let fields = value.fields("point")?;
        let name = str_field(fields, "name")?;
        Ok(match name {
            "verdict" => Point::Verdict {
                accepted: bool_field(fields, "accepted")?,
                support: num_field(fields, "support")?,
                dissent: num_field(fields, "dissent")?,
                rejection: match field(fields, "rejection") {
                    Some(v) => Some(intern(v.str_value("rejection")?)),
                    None => None,
                },
            },
            "fuel_exhausted" => Point::FuelExhausted {
                consumed: num_field(fields, "consumed")?,
            },
            "checkpoint" => Point::Checkpoint {
                label: intern(str_field(fields, "label")?),
            },
            "rollback" => Point::Rollback {
                label: intern(str_field(fields, "label")?),
            },
            "rejuvenation" => Point::Rejuvenation {
                age_before: num_field(fields, "age_before")?,
            },
            "reboot" => Point::Reboot {
                component: str_field(fields, "component")?.into(),
                depth: num_field(fields, "depth")?,
            },
            "service_rebind" => Point::ServiceRebind {
                interface: str_field(fields, "interface")?.into(),
                from: str_field(fields, "from")?.into(),
                to: str_field(fields, "to")?.into(),
            },
            "reexpression" => Point::Reexpression {
                name: str_field(fields, "reexpression")?.into(),
                attempt: num_field(fields, "attempt")?,
            },
            "perturbation" => Point::Perturbation {
                knob: intern(str_field(fields, "knob")?),
                attempt: num_field(fields, "attempt")?,
            },
            "gp_generation" => Point::GpGeneration {
                generation: num_field(fields, "generation")?,
                best_fitness: num_field(fields, "best_fitness")?,
            },
            "replica_divergence" => Point::ReplicaDivergence {
                detail: str_field(fields, "detail")?.into(),
            },
            "audit" => Point::Audit {
                clean: bool_field(fields, "clean")?,
                errors: num_field(fields, "errors")?,
            },
            "repair" => Point::Repair {
                outcome: intern(str_field(fields, "outcome")?),
            },
            "workaround" => Point::Workaround {
                rule: str_field(fields, "rule")?.into(),
                applied: bool_field(fields, "applied")?,
            },
            "sanitized" => Point::Sanitized {
                action: intern(str_field(fields, "action")?),
            },
            "early-decision" => Point::EarlyDecision {
                executed: num_field(fields, "executed")?,
                total: num_field(fields, "total")?,
            },
            "variant-cancelled" => Point::VariantCancelled {
                variant: str_field(fields, "variant")?.into(),
            },
            custom => Point::Custom {
                name: intern(custom),
                detail: str_field(fields, "detail")?.into(),
            },
        })
    }

    /// Parses one event from the JSON object produced by
    /// [`event_to_json`]. Numeric fields are converted from the raw
    /// number text per field, so `u64` values above 2^53 (seeds, span
    /// ids) round-trip exactly.
    pub fn event_from_json(line: &str) -> Result<Event, ParseError> {
        let value = parse_json(line.trim())?;
        let fields = value.fields("event")?;
        let kind = if let Some(start) = field(fields, "start") {
            EventKind::SpanStart {
                kind: span_kind_from(start)?,
            }
        } else if let Some(end) = field(fields, "end") {
            let e = end.fields("span end")?;
            let cost = required(e, "cost")?.fields("cost")?;
            EventKind::SpanEnd {
                status: status_from(required(e, "status")?)?,
                cost: CostSnapshot {
                    work_units: num_field(cost, "work_units")?,
                    virtual_ns: num_field(cost, "virtual_ns")?,
                    invocations: num_field(cost, "invocations")?,
                    design_cost: num_field(cost, "design_cost")?,
                },
            }
        } else if let Some(point) = field(fields, "point") {
            EventKind::Point(point_from(point)?)
        } else {
            return Err(ParseError::new(
                "event: missing \"start\", \"end\" or \"point\"",
            ));
        };
        Ok(Event {
            seq: num_field(fields, "seq")?,
            span: num_field(fields, "span")?,
            parent: num_field(fields, "parent")?,
            clock: num_field(fields, "clock")?,
            kind,
        })
    }

    /// Parses a JSON-lines trace — the exact inverse of [`to_jsonl`].
    /// Blank lines are skipped; the first malformed line aborts with its
    /// 1-based line number in the error.
    pub fn from_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(
                event_from_json(line)
                    .map_err(|e| ParseError::new(format!("line {}: {e}", i + 1)))?,
            );
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Point, SpanKind};

    fn sample_trace() -> Vec<Event> {
        vec![
            Event {
                seq: 0,
                span: 1,
                parent: ROOT_SPAN,
                clock: 0,
                kind: EventKind::SpanStart {
                    kind: SpanKind::Technique { name: "nvp" },
                },
            },
            Event {
                seq: 1,
                span: 2,
                parent: 1,
                clock: 0,
                kind: EventKind::SpanStart {
                    kind: SpanKind::Variant { name: "v1".into() },
                },
            },
            Event {
                seq: 2,
                span: 2,
                parent: 1,
                clock: 10,
                kind: EventKind::SpanEnd {
                    status: SpanStatus::Failed { kind: "crash" },
                    cost: CostSnapshot {
                        virtual_ns: 10,
                        work_units: 3,
                        invocations: 1,
                        design_cost: 0.0,
                    },
                },
            },
            Event {
                seq: 3,
                span: 1,
                parent: 1,
                clock: 10,
                kind: EventKind::Point(Point::Verdict {
                    accepted: true,
                    support: 2,
                    dissent: 1,
                    rejection: None,
                }),
            },
            Event {
                seq: 4,
                span: 1,
                parent: ROOT_SPAN,
                clock: 12,
                kind: EventKind::SpanEnd {
                    status: SpanStatus::Accepted {
                        support: 2,
                        dissent: 1,
                    },
                    cost: CostSnapshot {
                        virtual_ns: 12,
                        work_units: 9,
                        invocations: 3,
                        design_cost: 3.0,
                    },
                },
            },
        ]
    }

    #[test]
    fn span_tree_indents_and_closes() {
        let tree = render_span_tree(&sample_trace());
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("▶ technique nvp"));
        assert!(lines[1].starts_with("  ▶ variant v1"));
        assert!(lines[2].starts_with("  ◀ failed (crash)"));
        assert!(lines[3].starts_with("  • verdict"));
        assert!(lines[4].starts_with("◀ accepted 2:1"));
        assert!(lines[4].contains("ticks=12"));
    }

    #[test]
    fn summary_counts_and_total_cost_not_double_counted() {
        let s = TraceSummary::from_events(&sample_trace());
        assert_eq!(s.events, 5);
        assert_eq!(s.spans_closed, 2);
        assert_eq!(s.spans_open, 0);
        assert_eq!(s.accepted, 1);
        assert_eq!(s.failed.get("crash"), Some(&1));
        assert_eq!(s.points.get("verdict"), Some(&1));
        // The variant span is nested in the technique span: only the
        // technique's cost counts toward the total.
        assert_eq!(s.total_cost.virtual_ns, 12);
        assert_eq!(s.total_cost.invocations, 3);
        let rendered = s.to_string();
        assert!(rendered.contains("1 accepted"));
        assert!(rendered.contains("1 failed (crash)"));
    }

    #[test]
    fn summary_tolerates_truncated_trace() {
        // Drop the first two events (as a wrapped ring buffer would).
        let events = sample_trace()[2..].to_vec();
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.spans_closed, 0, "starts were lost");
        // Both ends count as roots now; costs sum without panicking.
        assert_eq!(s.total_cost.virtual_ns, 22);
        let tree = render_span_tree(&events);
        assert_eq!(tree.lines().count(), 3);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn jsonl_round_trip_shape() {
        let lines = to_jsonl(&sample_trace());
        assert_eq!(lines.lines().count(), 5);
        let first = lines.lines().next().unwrap();
        assert!(first.starts_with("{\"seq\":0,"));
        assert!(first.contains("\"start\":{\"technique\":\"nvp\"}"));
        let end = lines.lines().nth(4).unwrap();
        assert!(end.contains("\"accepted\":{\"support\":2,\"dissent\":1}"));
        assert!(end.contains("\"virtual_ns\":12"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_escapes_strings() {
        let event = Event {
            seq: 0,
            span: 1,
            parent: 0,
            clock: 0,
            kind: EventKind::Point(Point::ReplicaDivergence {
                detail: "quote \" backslash \\ newline \n".into(),
            }),
        };
        let json = event_to_json(&event);
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));
    }

    /// One event per `SpanKind`, `SpanStatus` and `Point` variant, with
    /// values chosen to stress the parser: seeds above 2^53, escaped
    /// strings, non-trivial floats.
    #[cfg(feature = "serde")]
    fn exhaustive_trace() -> Vec<Event> {
        let kinds = vec![
            EventKind::SpanStart {
                kind: SpanKind::Trial {
                    index: 41,
                    seed: 0xdead_beef_cafe_f00d,
                },
            },
            EventKind::SpanStart {
                kind: SpanKind::Technique { name: "n-version" },
            },
            EventKind::SpanStart {
                kind: SpanKind::Pattern {
                    name: "parallel_evaluation",
                },
            },
            EventKind::SpanStart {
                kind: SpanKind::Variant {
                    name: "v \"quoted\" \\ tab\t".into(),
                },
            },
            EventKind::SpanStart {
                kind: SpanKind::Scope { name: "gp-search" },
            },
            EventKind::SpanEnd {
                status: SpanStatus::Ok,
                cost: CostSnapshot::ZERO,
            },
            EventKind::SpanEnd {
                status: SpanStatus::Accepted {
                    support: 2,
                    dissent: 1,
                },
                cost: CostSnapshot {
                    work_units: 9,
                    virtual_ns: 123,
                    invocations: 3,
                    design_cost: 0.1 + 0.2, // 0.30000000000000004
                },
            },
            EventKind::SpanEnd {
                status: SpanStatus::Rejected {
                    reason: "no_quorum",
                },
                cost: CostSnapshot::ZERO,
            },
            EventKind::SpanEnd {
                status: SpanStatus::Failed { kind: "crash" },
                cost: CostSnapshot::ZERO,
            },
            EventKind::SpanEnd {
                status: SpanStatus::Trial {
                    disposition: "correct",
                },
                cost: CostSnapshot::ZERO,
            },
            EventKind::Point(Point::Verdict {
                accepted: true,
                support: 3,
                dissent: 0,
                rejection: None,
            }),
            EventKind::Point(Point::Verdict {
                accepted: false,
                support: 0,
                dissent: 0,
                rejection: Some("no_majority"),
            }),
            EventKind::Point(Point::FuelExhausted { consumed: 777 }),
            EventKind::Point(Point::Checkpoint { label: "process" }),
            EventKind::Point(Point::Rollback { label: "process" }),
            EventKind::Point(Point::Rejuvenation { age_before: 12 }),
            EventKind::Point(Point::Reboot {
                component: "cache".into(),
                depth: 2,
            }),
            EventKind::Point(Point::ServiceRebind {
                interface: "store".into(),
                from: "a".into(),
                to: "b".into(),
            }),
            EventKind::Point(Point::Reexpression {
                name: "reorder".into(),
                attempt: 1,
            }),
            EventKind::Point(Point::Perturbation {
                knob: "memory-layout",
                attempt: 3,
            }),
            EventKind::Point(Point::GpGeneration {
                generation: 7,
                best_fitness: 0.25,
            }),
            EventKind::Point(Point::ReplicaDivergence {
                detail: "control\u{1} char".into(),
            }),
            EventKind::Point(Point::Audit {
                clean: false,
                errors: 4,
            }),
            EventKind::Point(Point::Repair { outcome: "partial" }),
            EventKind::Point(Point::Workaround {
                rule: "swap-args".into(),
                applied: true,
            }),
            EventKind::Point(Point::Sanitized {
                action: "rewritten",
            }),
            EventKind::Point(Point::EarlyDecision {
                executed: 2,
                total: 5,
            }),
            EventKind::Point(Point::VariantCancelled {
                variant: "v3".into(),
            }),
            EventKind::Point(Point::Custom {
                name: "my_event",
                detail: "unicode: é λ \u{1f600}".into(),
            }),
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                seq: i as u64,
                span: 0x8000_0000_0000_0000 + i as u64, // above 2^53
                parent: i as u64 / 2,
                clock: 10 * i as u64,
                kind,
            })
            .collect()
    }

    #[cfg(feature = "serde")]
    #[test]
    fn jsonl_parses_back_every_variant() {
        let trace = exhaustive_trace();
        let text = to_jsonl(&trace);
        let parsed = from_jsonl(&text).expect("trace parses");
        assert_eq!(parsed, trace);
        // And the parse is exact: re-serializing gives identical bytes.
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn parsed_static_labels_are_interned_per_distinct_value() {
        let trace = exhaustive_trace();
        let text = to_jsonl(&trace);
        let a = from_jsonl(&text).expect("parses");
        let b = from_jsonl(&text).expect("parses");
        // Two parses of the same label yield the same leaked allocation.
        let tech = |events: &[Event]| -> &'static str {
            events
                .iter()
                .find_map(|e| match &e.kind {
                    EventKind::SpanStart {
                        kind: SpanKind::Technique { name },
                    } => Some(*name),
                    _ => None,
                })
                .expect("technique span present")
        };
        assert!(std::ptr::eq(tech(&a), tech(&b)));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn parse_errors_name_the_line_and_field() {
        let err = from_jsonl("{\"seq\":0}\n").expect_err("missing fields");
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        let err = from_jsonl("{\"seq\":0,\"span\":1,\"parent\":0,\"clock\":0,\"point\":{\"name\":\"audit\",\"clean\":true}}")
            .expect_err("missing errors field");
        assert!(err.to_string().contains("errors"), "{err}");
        let err = event_from_json("not json").expect_err("garbage");
        assert!(!err.to_string().is_empty());
        // Torn tail: a truncated line is an error, not a silent skip.
        assert!(event_from_json("{\"seq\":0,\"span\":1,\"par").is_err());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn u64_values_above_2p53_round_trip_exactly() {
        let seed = u64::MAX - 1; // not representable in f64
        let event = Event {
            seq: u64::MAX,
            span: 1,
            parent: 0,
            clock: 0,
            kind: EventKind::SpanStart {
                kind: SpanKind::Trial { index: 0, seed },
            },
        };
        let parsed = event_from_json(&event_to_json(&event)).expect("parses");
        assert_eq!(parsed, event);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn interned_symbols_round_trip_through_event_json() {
        use crate::intern::Symbol;
        let name = Symbol::intern("variant: é λ \"quoted\" \\ back \n tail");
        let event = Event {
            seq: 7,
            span: 3,
            parent: 1,
            clock: 11,
            kind: EventKind::SpanStart {
                kind: SpanKind::Variant { name },
            },
        };
        let line = event_to_json(&event);
        let parsed = event_from_json(&line).expect("parses");
        let EventKind::SpanStart {
            kind: SpanKind::Variant { name: reparsed },
        } = parsed.kind
        else {
            panic!("wrong kind: {parsed:?}");
        };
        // The parser re-interns into the same table: same dense id, and
        // resolving yields the very same leaked allocation.
        assert_eq!(reparsed, name);
        assert!(std::ptr::eq(reparsed.resolve(), name.resolve()));
        // And the checkpoint round trip is byte-exact.
        assert_eq!(event_to_json(&parsed), line);
    }
}
