//! Exporters: span-tree rendering, trace summaries, and JSON-lines.
//!
//! All exporters consume a flat `&[Event]` slice (as produced by
//! [`RingBufferObserver::events`](crate::RingBufferObserver::events)) and
//! are tolerant of truncated traces: a ring buffer that wrapped may have
//! lost the starts of old spans, and the renderers degrade gracefully.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::event::{CostSnapshot, Event, EventKind, SpanId, SpanStatus, ROOT_SPAN};

/// Renders a trace as an indented span tree, one line per event.
///
/// Span starts open an indent level, span ends close it (annotated with
/// status and cost), points render as `•` leaves. Events whose span start
/// was lost to ring-buffer wraparound render at the root level.
#[must_use]
pub fn render_span_tree(events: &[Event]) -> String {
    let mut out = String::new();
    // Depth of each known open span; root is depth 0.
    let mut depth: BTreeMap<SpanId, usize> = BTreeMap::new();
    depth.insert(ROOT_SPAN, 0);
    for event in events {
        match &event.kind {
            EventKind::SpanStart { kind } => {
                let d = depth.get(&event.parent).copied().unwrap_or(0);
                depth.insert(event.span, d + 1);
                let _ = writeln!(
                    out,
                    "{:indent$}▶ {} [span {} @{}]",
                    "",
                    kind.label(),
                    event.span,
                    event.clock,
                    indent = d * 2
                );
            }
            EventKind::SpanEnd { status, cost } => {
                let d = depth.remove(&event.span).map_or(0, |d| d.saturating_sub(1));
                let _ = writeln!(
                    out,
                    "{:indent$}◀ {} [span {} @{}] ticks={} fuel={} inv={}",
                    "",
                    status.label(),
                    event.span,
                    event.clock,
                    cost.virtual_ns,
                    cost.work_units,
                    cost.invocations,
                    indent = d * 2
                );
            }
            EventKind::Point(point) => {
                let d = depth.get(&event.span).copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{:indent$}• {} @{}",
                    "",
                    point.name(),
                    event.clock,
                    indent = d * 2
                );
            }
        }
    }
    out
}

/// Aggregate view of a trace: event/span counts, verdict tallies, failure
/// and point breakdowns, and total cost across top-level spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events summarized.
    pub events: usize,
    /// Spans that both started and ended inside the trace.
    pub spans_closed: usize,
    /// Spans started but never ended (trace truncated or still running).
    pub spans_open: usize,
    /// Accepted adjudications (from span statuses and verdict points).
    pub accepted: usize,
    /// Rejected adjudications, keyed by rejection reason.
    pub rejected: BTreeMap<&'static str, usize>,
    /// Failed spans, keyed by failure kind.
    pub failed: BTreeMap<&'static str, usize>,
    /// Point events, keyed by point name.
    pub points: BTreeMap<&'static str, usize>,
    /// Summed cost of spans that ended with no enclosing span in-trace
    /// (i.e. the roots actually covered by this trace).
    pub total_cost: CostSnapshot,
}

impl TraceSummary {
    /// Summarizes a flat event slice.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut summary = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        let mut open: BTreeMap<SpanId, SpanId> = BTreeMap::new(); // span -> parent
        for event in events {
            match &event.kind {
                EventKind::SpanStart { .. } => {
                    open.insert(event.span, event.parent);
                }
                EventKind::SpanEnd { status, cost } => {
                    let parent = open.remove(&event.span);
                    if parent.is_some() {
                        summary.spans_closed += 1;
                    }
                    // Only roots (parent not itself inside an open span we
                    // know about) contribute to the total, so nested costs
                    // are not double counted.
                    let parent_open = parent.is_some_and(|p| open.contains_key(&p));
                    if !parent_open {
                        summary.total_cost.work_units += cost.work_units;
                        summary.total_cost.virtual_ns += cost.virtual_ns;
                        summary.total_cost.invocations += cost.invocations;
                        summary.total_cost.design_cost += cost.design_cost;
                    }
                    match status {
                        SpanStatus::Accepted { .. } => summary.accepted += 1,
                        SpanStatus::Rejected { reason } => {
                            *summary.rejected.entry(reason).or_insert(0) += 1;
                        }
                        SpanStatus::Failed { kind } => {
                            *summary.failed.entry(kind).or_insert(0) += 1;
                        }
                        SpanStatus::Ok | SpanStatus::Trial { .. } => {}
                    }
                }
                EventKind::Point(point) => {
                    *summary.points.entry(leak_free_name(point)).or_insert(0) += 1;
                }
            }
        }
        summary.spans_open = open.len();
        summary
    }
}

/// `Point::name()` returns `&'static str` for every builtin point; custom
/// points carry their own static name. This helper just documents that no
/// leaking is involved.
fn leak_free_name(point: &crate::event::Point) -> &'static str {
    point.name()
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events, {} spans closed, {} open",
            self.events, self.spans_closed, self.spans_open
        )?;
        writeln!(
            f,
            "cost:  ticks={} fuel={} invocations={} design={:.1}",
            self.total_cost.virtual_ns,
            self.total_cost.work_units,
            self.total_cost.invocations,
            self.total_cost.design_cost
        )?;
        write!(f, "adjudication: {} accepted", self.accepted)?;
        for (reason, n) in &self.rejected {
            write!(f, ", {n} rejected ({reason})")?;
        }
        for (kind, n) in &self.failed {
            write!(f, ", {n} failed ({kind})")?;
        }
        writeln!(f)?;
        if !self.points.is_empty() {
            write!(f, "points:")?;
            for (name, n) in &self.points {
                write!(f, " {name}={n}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Convenience: summarize and render in one call (what `--trace` prints).
#[must_use]
pub fn summary(events: &[Event]) -> String {
    TraceSummary::from_events(events).to_string()
}

#[cfg(feature = "serde")]
pub use self::jsonl::{event_to_json, to_jsonl};

#[cfg(feature = "serde")]
mod jsonl {
    //! Hand-rolled JSON-lines serialization (the workspace builds offline,
    //! with no real serde available; the output is plain JSON regardless).

    use std::fmt::Write as _;

    use crate::event::{Event, EventKind, Point, SpanKind, SpanStatus};

    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn span_kind_json(kind: &SpanKind, out: &mut String) {
        match kind {
            SpanKind::Trial { index, seed } => {
                let _ = write!(out, "{{\"trial\":{{\"index\":{index},\"seed\":{seed}}}}}");
            }
            SpanKind::Technique { name } => {
                out.push_str("{\"technique\":");
                escape(name, out);
                out.push('}');
            }
            SpanKind::Pattern { name } => {
                out.push_str("{\"pattern\":");
                escape(name, out);
                out.push('}');
            }
            SpanKind::Variant { name } => {
                out.push_str("{\"variant\":");
                escape(name, out);
                out.push('}');
            }
            SpanKind::Scope { name } => {
                out.push_str("{\"scope\":");
                escape(name, out);
                out.push('}');
            }
        }
    }

    fn status_json(status: &SpanStatus, out: &mut String) {
        match status {
            SpanStatus::Ok => out.push_str("{\"ok\":true}"),
            SpanStatus::Accepted { support, dissent } => {
                let _ = write!(
                    out,
                    "{{\"accepted\":{{\"support\":{support},\"dissent\":{dissent}}}}}"
                );
            }
            SpanStatus::Rejected { reason } => {
                out.push_str("{\"rejected\":");
                escape(reason, out);
                out.push('}');
            }
            SpanStatus::Failed { kind } => {
                out.push_str("{\"failed\":");
                escape(kind, out);
                out.push('}');
            }
            SpanStatus::Trial { disposition } => {
                out.push_str("{\"trial\":");
                escape(disposition, out);
                out.push('}');
            }
        }
    }

    fn point_json(point: &Point, out: &mut String) {
        out.push_str("{\"name\":");
        escape(point.name(), out);
        match point {
            Point::Verdict {
                accepted,
                support,
                dissent,
                rejection,
            } => {
                let _ = write!(
                    out,
                    ",\"accepted\":{accepted},\"support\":{support},\"dissent\":{dissent}"
                );
                if let Some(reason) = rejection {
                    out.push_str(",\"rejection\":");
                    escape(reason, out);
                }
            }
            Point::FuelExhausted { consumed } => {
                let _ = write!(out, ",\"consumed\":{consumed}");
            }
            Point::Checkpoint { label } | Point::Rollback { label } => {
                out.push_str(",\"label\":");
                escape(label, out);
            }
            Point::Rejuvenation { age_before } => {
                let _ = write!(out, ",\"age_before\":{age_before}");
            }
            Point::Reboot { component, depth } => {
                out.push_str(",\"component\":");
                escape(component, out);
                let _ = write!(out, ",\"depth\":{depth}");
            }
            Point::ServiceRebind {
                interface,
                from,
                to,
            } => {
                out.push_str(",\"interface\":");
                escape(interface, out);
                out.push_str(",\"from\":");
                escape(from, out);
                out.push_str(",\"to\":");
                escape(to, out);
            }
            Point::Reexpression { name, attempt } => {
                out.push_str(",\"reexpression\":");
                escape(name, out);
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            Point::Perturbation { knob, attempt } => {
                out.push_str(",\"knob\":");
                escape(knob, out);
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            Point::GpGeneration {
                generation,
                best_fitness,
            } => {
                let _ = write!(
                    out,
                    ",\"generation\":{generation},\"best_fitness\":{best_fitness}"
                );
            }
            Point::ReplicaDivergence { detail } => {
                out.push_str(",\"detail\":");
                escape(detail, out);
            }
            Point::Audit { clean, errors } => {
                let _ = write!(out, ",\"clean\":{clean},\"errors\":{errors}");
            }
            Point::Repair { outcome } => {
                out.push_str(",\"outcome\":");
                escape(outcome, out);
            }
            Point::Workaround { rule, applied } => {
                out.push_str(",\"rule\":");
                escape(rule, out);
                let _ = write!(out, ",\"applied\":{applied}");
            }
            Point::Sanitized { action } => {
                out.push_str(",\"action\":");
                escape(action, out);
            }
            Point::EarlyDecision { executed, total } => {
                let _ = write!(out, ",\"executed\":{executed},\"total\":{total}");
            }
            Point::VariantCancelled { variant } => {
                out.push_str(",\"variant\":");
                escape(variant, out);
            }
            Point::Custom { detail, .. } => {
                out.push_str(",\"detail\":");
                escape(detail, out);
            }
        }
        out.push('}');
    }

    /// Serializes one event as a single JSON object (no trailing newline).
    #[must_use]
    pub fn event_to_json(event: &Event) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"seq\":{},\"span\":{},\"parent\":{},\"clock\":{},",
            event.seq, event.span, event.parent, event.clock
        );
        match &event.kind {
            EventKind::SpanStart { kind } => {
                out.push_str("\"start\":");
                span_kind_json(kind, &mut out);
            }
            EventKind::SpanEnd { status, cost } => {
                out.push_str("\"end\":{\"status\":");
                status_json(status, &mut out);
                let _ = write!(
                    out,
                    ",\"cost\":{{\"work_units\":{},\"virtual_ns\":{},\"invocations\":{},\"design_cost\":{}}}}}",
                    cost.work_units, cost.virtual_ns, cost.invocations, cost.design_cost
                );
            }
            EventKind::Point(point) => {
                out.push_str("\"point\":");
                point_json(point, &mut out);
            }
        }
        out.push('}');
        out
    }

    /// Serializes a trace as JSON-lines: one event object per line.
    #[must_use]
    pub fn to_jsonl(events: &[Event]) -> String {
        let mut out = String::new();
        for event in events {
            out.push_str(&event_to_json(event));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Point, SpanKind};

    fn sample_trace() -> Vec<Event> {
        vec![
            Event {
                seq: 0,
                span: 1,
                parent: ROOT_SPAN,
                clock: 0,
                kind: EventKind::SpanStart {
                    kind: SpanKind::Technique { name: "nvp" },
                },
            },
            Event {
                seq: 1,
                span: 2,
                parent: 1,
                clock: 0,
                kind: EventKind::SpanStart {
                    kind: SpanKind::Variant {
                        name: "v1".to_owned(),
                    },
                },
            },
            Event {
                seq: 2,
                span: 2,
                parent: 1,
                clock: 10,
                kind: EventKind::SpanEnd {
                    status: SpanStatus::Failed { kind: "crash" },
                    cost: CostSnapshot {
                        virtual_ns: 10,
                        work_units: 3,
                        invocations: 1,
                        design_cost: 0.0,
                    },
                },
            },
            Event {
                seq: 3,
                span: 1,
                parent: 1,
                clock: 10,
                kind: EventKind::Point(Point::Verdict {
                    accepted: true,
                    support: 2,
                    dissent: 1,
                    rejection: None,
                }),
            },
            Event {
                seq: 4,
                span: 1,
                parent: ROOT_SPAN,
                clock: 12,
                kind: EventKind::SpanEnd {
                    status: SpanStatus::Accepted {
                        support: 2,
                        dissent: 1,
                    },
                    cost: CostSnapshot {
                        virtual_ns: 12,
                        work_units: 9,
                        invocations: 3,
                        design_cost: 3.0,
                    },
                },
            },
        ]
    }

    #[test]
    fn span_tree_indents_and_closes() {
        let tree = render_span_tree(&sample_trace());
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("▶ technique nvp"));
        assert!(lines[1].starts_with("  ▶ variant v1"));
        assert!(lines[2].starts_with("  ◀ failed (crash)"));
        assert!(lines[3].starts_with("  • verdict"));
        assert!(lines[4].starts_with("◀ accepted 2:1"));
        assert!(lines[4].contains("ticks=12"));
    }

    #[test]
    fn summary_counts_and_total_cost_not_double_counted() {
        let s = TraceSummary::from_events(&sample_trace());
        assert_eq!(s.events, 5);
        assert_eq!(s.spans_closed, 2);
        assert_eq!(s.spans_open, 0);
        assert_eq!(s.accepted, 1);
        assert_eq!(s.failed.get("crash"), Some(&1));
        assert_eq!(s.points.get("verdict"), Some(&1));
        // The variant span is nested in the technique span: only the
        // technique's cost counts toward the total.
        assert_eq!(s.total_cost.virtual_ns, 12);
        assert_eq!(s.total_cost.invocations, 3);
        let rendered = s.to_string();
        assert!(rendered.contains("1 accepted"));
        assert!(rendered.contains("1 failed (crash)"));
    }

    #[test]
    fn summary_tolerates_truncated_trace() {
        // Drop the first two events (as a wrapped ring buffer would).
        let events = sample_trace()[2..].to_vec();
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.spans_closed, 0, "starts were lost");
        // Both ends count as roots now; costs sum without panicking.
        assert_eq!(s.total_cost.virtual_ns, 22);
        let tree = render_span_tree(&events);
        assert_eq!(tree.lines().count(), 3);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn jsonl_round_trip_shape() {
        let lines = to_jsonl(&sample_trace());
        assert_eq!(lines.lines().count(), 5);
        let first = lines.lines().next().unwrap();
        assert!(first.starts_with("{\"seq\":0,"));
        assert!(first.contains("\"start\":{\"technique\":\"nvp\"}"));
        let end = lines.lines().nth(4).unwrap();
        assert!(end.contains("\"accepted\":{\"support\":2,\"dissent\":1}"));
        assert!(end.contains("\"virtual_ns\":12"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_escapes_strings() {
        let event = Event {
            seq: 0,
            span: 1,
            parent: 0,
            clock: 0,
            kind: EventKind::Point(Point::ReplicaDivergence {
                detail: "quote \" backslash \\ newline \n".to_owned(),
            }),
        };
        let json = event_to_json(&event);
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));
    }
}
