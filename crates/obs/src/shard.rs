//! Sharded capture: record event streams on independent shards (one per
//! trial or per worker) and merge them back into a single stream that is
//! indistinguishable from a serial recording.
//!
//! A parallel Monte-Carlo campaign cannot share one [`ObsHandle`] across
//! worker threads without interleaving the streams of concurrent trials
//! and allocating span ids in scheduling order — both of which destroy
//! the deterministic-replay guarantee. Instead, every trial records into
//! its own [`CollectorObserver`] through its own handle (span ids start
//! at 1 per shard), and [`merge_shards`] stitches the shards together in
//! trial order, renumbering span ids exactly as one shared allocator
//! would have assigned them. The merged stream is therefore *bit-for-bit
//! identical* to what the serial traced run records, so every downstream
//! consumer — `split_trials`, `TraceSummary`, exporters — works unchanged
//! on parallel campaigns.
//!
//! [`ObsHandle`]: crate::ObsHandle

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::event::{Event, EventKind, ROOT_SPAN};
use crate::observer::{ObsHandle, Observer};

/// Unbounded in-memory capture for one shard (one trial or worker).
///
/// Unlike [`RingBufferObserver`](crate::RingBufferObserver) it never
/// evicts and does not pre-allocate capacity, so creating one per trial
/// is cheap. Sequence numbers are assigned contiguously from 0 in record
/// order, shard-locally.
#[derive(Default)]
pub struct CollectorObserver {
    events: Mutex<Vec<Event>>,
}

impl CollectorObserver {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Takes the recorded events out, leaving the collector empty.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Consumes the collector, returning the recorded events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
            .into_inner()
            .expect("collector lock is never poisoned")
    }

    /// Installs `buf` (cleared) as the backing storage, dropping the
    /// current contents. Recycling a drained shard's allocation through
    /// here (see [`ShardPool`]) makes per-trial collection allocation-free
    /// once buffers have warmed up.
    pub fn install_buffer(&self, mut buf: Vec<Event>) {
        buf.clear();
        *self.lock() = buf;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events
            .lock()
            .expect("collector lock is never poisoned")
    }
}

impl Observer for CollectorObserver {
    fn record(&self, mut event: Event) {
        let mut events = self.lock();
        event.seq = events.len() as u64;
        events.push(event);
    }
}

/// The number of span ids a shard's local allocator consumed: every
/// `SpanStart` allocated exactly one id.
fn spans_allocated(events: &[Event]) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SpanStart { .. }))
        .count() as u64
}

/// Renumbers one shard's span ids into the campaign-wide id space and
/// forwards its events to `sink` in order.
///
/// Shard-local handles allocate ids `1..=k` contiguously in span-start
/// order (see [`ObsHandle::new`](crate::ObsHandle::new)), so the remap is
/// the affine shift `local + offset` with `ROOT_SPAN` left untouched —
/// exactly the ids a single shared allocator would have handed out had
/// the shards been recorded one after another. Returns the number of ids
/// the shard consumed so the caller can advance its allocator cursor.
pub fn forward_renumbered(events: Vec<Event>, offset: u64, sink: &dyn Observer) -> u64 {
    let mut events = events;
    forward_renumbered_drain(&mut events, offset, sink)
}

/// Like [`forward_renumbered`], but drains `events` in place, leaving an
/// empty vector whose allocation the caller can recycle (see
/// [`ShardPool`]).
pub fn forward_renumbered_drain(events: &mut Vec<Event>, offset: u64, sink: &dyn Observer) -> u64 {
    let allocated = renumber_in_place(events, offset);
    for event in events.drain(..) {
        sink.record(event);
    }
    allocated
}

/// Shifts one shard's span ids into the campaign-wide id space without
/// forwarding anything: the renumbering half of [`forward_renumbered`].
/// Returns the number of ids the shard consumed.
pub fn renumber_in_place(events: &mut [Event], offset: u64) -> u64 {
    let allocated = spans_allocated(events);
    for event in events.iter_mut() {
        if event.span != ROOT_SPAN {
            event.span += offset;
        }
        if event.parent != ROOT_SPAN {
            event.parent += offset;
        }
    }
    allocated
}

/// Merges shard streams (each recorded through its own fresh
/// [`ObsHandle`], ids starting at 1) into one flat stream, in shard
/// order, renumbering span ids and sequence numbers as a single serial
/// recording would have. See the module docs for why the result is
/// bit-for-bit identical to the serial stream.
#[must_use]
pub fn merge_shards(shards: Vec<Vec<Event>>) -> Vec<Event> {
    let merged = CollectorObserver::new();
    let mut offset = 0;
    for shard in shards {
        offset += forward_renumbered(shard, offset, &merged);
    }
    merged.into_events()
}

/// Maximum spare buffers a [`ShardPool`] retains; beyond this, returned
/// buffers are simply dropped (steady state never needs more spares than
/// in-flight shards, which the streaming merge bounds).
const SHARD_POOL_CAP: usize = 1024;

/// Default cap on the per-event capacity a fresh buffer is pre-reserved
/// to (see [`prewarm_cap`]). Far above any per-trial event count the
/// simulator produces, while still bounding a pathological trial's
/// influence on every later checkout.
const DEFAULT_SHARD_PREWARM: usize = 4096;

/// Resolves `REDUNDANCY_SHARD_PREWARM`: the cap on how many events a
/// *fresh* pool checkout pre-reserves capacity for (fresh checkouts
/// mirror the observed high-water mark, clamped to this cap). An empty
/// value is treated as unset; a set-but-invalid value warns once and
/// falls back to the default, so a typo doesn't silently change the
/// allocation profile.
fn prewarm_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| match std::env::var("REDUNDANCY_SHARD_PREWARM") {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(cap) => cap,
            _ if value.trim().is_empty() => DEFAULT_SHARD_PREWARM,
            _ => {
                eprintln!(
                    "warning: ignoring REDUNDANCY_SHARD_PREWARM={value:?}: expected an \
                     event count, using default {DEFAULT_SHARD_PREWARM}"
                );
                DEFAULT_SHARD_PREWARM
            }
        },
        Err(_) => DEFAULT_SHARD_PREWARM,
    })
}

/// A free list of event buffers shared between shard producers and the
/// merger: producers [`check_out`](ShardPool::check_out) a warmed-up
/// buffer per trial, the merge drains it into the sink and
/// [`check_in`](ShardPool::check_in)s the empty allocation.
///
/// Together with the per-worker collector arena ([`with_worker_shard`])
/// this removes the per-trial buffer growth that dominated traced
/// campaigns' allocation profile.
#[derive(Default)]
pub struct ShardPool {
    spare: Mutex<Vec<Vec<Event>>>,
    /// Largest buffer capacity ever checked back in: what "warm" means
    /// for this pool's workload.
    high_water: AtomicUsize,
}

impl ShardPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a spare (empty, capacity-warm) buffer. When the pool is dry
    /// (the first checkouts of a campaign, or a burst wider than the
    /// steady-state window) the fresh buffer is pre-reserved to the
    /// observed high-water capacity — clamped by
    /// `REDUNDANCY_SHARD_PREWARM` — so it does not regrow step by step
    /// through its first trial.
    #[must_use]
    pub fn check_out(&self) -> Vec<Event> {
        if let Some(buf) = self
            .spare
            .lock()
            .expect("shard pool lock never poisoned")
            .pop()
        {
            return buf;
        }
        let reserve = self.high_water.load(Ordering::Relaxed).min(prewarm_cap());
        Vec::with_capacity(reserve)
    }

    /// Returns a buffer's allocation to the pool (cleared).
    pub fn check_in(&self, mut buf: Vec<Event>) {
        self.high_water.fetch_max(buf.capacity(), Ordering::Relaxed);
        buf.clear();
        let mut spare = self.spare.lock().expect("shard pool lock never poisoned");
        if spare.len() < SHARD_POOL_CAP {
            spare.push(buf);
        }
    }

    /// Number of spare buffers currently pooled.
    #[must_use]
    pub fn spares(&self) -> usize {
        self.spare
            .lock()
            .expect("shard pool lock never poisoned")
            .len()
    }
}

/// The per-worker-thread allocation arena for traced trials: a pooled
/// [`CollectorObserver`] plus a pooled span-id allocator, both reused
/// across every trial the worker runs (see [`with_worker_arena`]).
#[derive(Clone)]
pub struct WorkerArena {
    collector: Arc<CollectorObserver>,
    ids: Arc<AtomicU64>,
}

impl WorkerArena {
    fn new() -> Self {
        WorkerArena {
            collector: Arc::new(CollectorObserver::new()),
            ids: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The arena's collector shard.
    #[must_use]
    pub fn collector(&self) -> &Arc<CollectorObserver> {
        &self.collector
    }

    /// Builds a trial-local [`ObsHandle`] recording into the arena's
    /// collector, reusing the arena's pooled id allocator (reset to 1)
    /// instead of allocating a fresh one — the last heap allocation the
    /// per-trial traced hot path performed. Only one handle may be live
    /// per arena at a time; the worker-thread discipline of
    /// [`with_worker_arena`] guarantees that.
    #[must_use]
    pub fn handle(&self) -> ObsHandle {
        ObsHandle::with_id_allocator(
            Arc::clone(&self.collector) as Arc<dyn Observer>,
            Arc::clone(&self.ids),
        )
    }
}

thread_local! {
    /// Per-worker pooled arena (see [`with_worker_arena`]).
    static WORKER_ARENA: RefCell<Option<WorkerArena>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's pooled [`WorkerArena`], creating it on
/// first use and recycling it afterwards.
///
/// Traced parallel campaigns record every trial through a collector
/// shard; allocating one `Arc<CollectorObserver>` (and one span-id
/// counter) per trial showed up as pure overhead at sub-microsecond
/// trial costs. Worker threads are persistent (see the simulator's
/// pool), so one arena per worker amortizes that to zero. Re-entrant
/// calls (a traced trial that itself runs a traced campaign) fall back
/// to a fresh arena.
pub fn with_worker_arena<R>(f: impl FnOnce(&WorkerArena) -> R) -> R {
    let cached = WORKER_ARENA.with(|slot| slot.borrow_mut().take());
    let arena = cached.unwrap_or_else(WorkerArena::new);
    let result = f(&arena);
    WORKER_ARENA.with(|slot| {
        let mut cell = slot.borrow_mut();
        if cell.is_none() {
            *cell = Some(arena);
        }
    });
    result
}

/// Runs `f` with this thread's pooled [`CollectorObserver`] — the
/// collector half of [`with_worker_arena`], kept for callers that manage
/// their own handles.
pub fn with_worker_shard<R>(f: impl FnOnce(&Arc<CollectorObserver>) -> R) -> R {
    with_worker_arena(|arena| f(&arena.collector))
}

/// An observer of each trial's renumbered events at forward time
/// (see [`StreamingMerger::with_tap`]).
type TrialTap = Box<dyn Fn(usize, &[Event]) + Send + Sync>;

/// Streams shard merging: forwards trial `i`'s events to the sink as
/// soon as every trial `< i` has been submitted, instead of buffering
/// the whole campaign and merging at the end.
///
/// The sink sees exactly the stream [`merge_shards`] would produce —
/// submissions are renumbered and forwarded under one lock, in strict
/// trial order — but peak memory is bounded by the *out-of-orderness* of
/// the submitters (a window of in-flight trials), not by the campaign
/// size. With [`with_window`](Self::with_window), submitters that run
/// too far ahead block until the gap trial arrives, making the bound a
/// hard guarantee; the submitter owning the gap trial can never block,
/// so the window cannot deadlock (chunks are claimed in index order).
pub struct StreamingMerger {
    sink: Arc<dyn Observer>,
    pool: Option<Arc<ShardPool>>,
    window: Option<usize>,
    tap: Option<TrialTap>,
    state: Mutex<MergeState>,
    advanced: Condvar,
}

struct MergeState {
    /// Next trial index to forward.
    next: usize,
    /// Span-id offset accumulated over forwarded shards.
    offset: u64,
    /// Shards submitted out of order, waiting for the gap to fill.
    pending: BTreeMap<usize, Vec<Event>>,
    /// High-water mark of `pending` (including the shard being merged).
    peak_buffered: usize,
    /// Set by [`StreamingMerger::abort`]: a submitter is unwinding, so
    /// blocked submitters must wake and later submissions are discarded.
    aborted: bool,
}

impl StreamingMerger {
    /// Creates a merger forwarding to `sink`, starting at trial 0.
    #[must_use]
    pub fn new(sink: Arc<dyn Observer>) -> Self {
        StreamingMerger {
            sink,
            pool: None,
            window: None,
            tap: None,
            state: Mutex::new(MergeState {
                next: 0,
                offset: 0,
                pending: BTreeMap::new(),
                peak_buffered: 0,
                aborted: false,
            }),
            advanced: Condvar::new(),
        }
    }

    /// Recycles drained shard allocations into `pool`.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<ShardPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Enforces a hard bound on buffered shards: a submission more than
    /// `window` trials ahead of the merge frontier blocks until the
    /// frontier advances. `window` is clamped to at least 1.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = Some(window.max(1));
        self
    }

    /// Starts the merge frontier at trial `next` with `offset` span ids
    /// already consumed, instead of trial 0 — the resume entry point: a
    /// campaign replaying trials `0..next` from a checkpoint continues
    /// the id space exactly where the interrupted run's merge left off.
    #[must_use]
    pub fn with_start(mut self, next: usize, offset: u64) -> Self {
        let state = self.state.get_mut().expect("merger lock never poisoned");
        state.next = next;
        state.offset = offset;
        self
    }

    /// Observes each trial's events — span ids renumbered into the
    /// campaign-wide id space, i.e. exactly the slice of the merged
    /// stream this trial contributes — just before they are forwarded to
    /// the sink. `seq` values are still shard-local: sinks assign global
    /// sequence numbers at record time, so replaying tapped slices
    /// through a fresh sink (the checkpoint-resume path) reproduces the
    /// merged stream exactly. The tap runs under the merger lock, in
    /// strict trial order; keep it cheap (the checkpoint committer
    /// serializes to an in-memory buffer).
    #[must_use]
    pub fn with_tap(mut self, tap: impl Fn(usize, &[Event]) + Send + Sync + 'static) -> Self {
        self.tap = Some(Box::new(tap));
        self
    }

    /// Unblocks every submitter waiting on the window and discards all
    /// later submissions.
    ///
    /// A submitter that panics never submits its trial, so the merge
    /// frontier stops there forever and — with a window — every other
    /// submitter eventually blocks on the condvar: the campaign would
    /// deadlock instead of propagating the panic. Callers that catch a
    /// trial panic call `abort` before unwinding; blocked `submit` calls
    /// return immediately (their events are dropped — the stream is
    /// abandoned anyway).
    pub fn abort(&self) {
        self.state
            .lock()
            .expect("merger lock never poisoned")
            .aborted = true;
        self.advanced.notify_all();
    }

    /// Submits trial `index`'s shard, forwarding it (and any unblocked
    /// successors) if the merge frontier has reached it.
    ///
    /// Each index must be submitted exactly once; indices must cover
    /// `0..n` by the time the campaign ends or later shards stay queued.
    pub fn submit(&self, index: usize, events: Vec<Event>) {
        let mut state = self.state.lock().expect("merger lock never poisoned");
        if let Some(window) = self.window {
            // Too far ahead: wait for the frontier. The submitter of the
            // frontier trial itself never enters this branch
            // (index == state.next fails the guard), so progress is
            // guaranteed. Time spent here is run-ahead backpressure — the
            // flight recorder counts and times it per blocked submission.
            let mut stalled_since = None;
            while !state.aborted && index > state.next && index - state.next >= window {
                if stalled_since.is_none() {
                    crate::telemetry::add(crate::telemetry::Counter::MergerStalls, 1);
                    stalled_since = crate::telemetry::timer_start();
                }
                state = self
                    .advanced
                    .wait(state)
                    .expect("merger lock never poisoned");
            }
            crate::telemetry::timer_stop(crate::telemetry::Timer::MergerStallNs, stalled_since);
        }
        if state.aborted {
            return;
        }
        state.peak_buffered = state.peak_buffered.max(state.pending.len() + 1);
        // In-order fast path: the frontier trial's shard never touches the
        // pending map (a BTreeMap insert+remove allocates a node per trial,
        // which at jobs=1 is every trial).
        let mut incoming = Some(events);
        if index != state.next {
            state
                .pending
                .insert(index, incoming.take().expect("just set"));
        }
        let mut forwarded = 0u64;
        while let Some(mut shard) = incoming.take().or_else(|| {
            let next = state.next;
            state.pending.remove(&next)
        }) {
            let trial = state.next;
            state.offset += renumber_in_place(&mut shard, state.offset);
            if let Some(tap) = &self.tap {
                tap(trial, &shard);
            }
            for event in shard.drain(..) {
                self.sink.record(event);
            }
            state.next += 1;
            forwarded += 1;
            if let Some(pool) = &self.pool {
                pool.check_in(shard);
            }
        }
        drop(state);
        if forwarded > 0 {
            crate::telemetry::add(crate::telemetry::Counter::MergerTrialsForwarded, forwarded);
        }
        self.advanced.notify_all();
    }

    /// High-water mark of simultaneously buffered shards (including the
    /// one being merged at the time).
    #[must_use]
    pub fn peak_buffered(&self) -> usize {
        self.state
            .lock()
            .expect("merger lock never poisoned")
            .peak_buffered
    }

    /// Number of shards forwarded so far.
    #[must_use]
    pub fn forwarded(&self) -> usize {
        self.state.lock().expect("merger lock never poisoned").next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CostSnapshot, SpanKind, SpanStatus};
    use crate::observer::{ObsHandle, RingBufferObserver};
    use std::sync::Arc;

    /// Records `trials` two-span "trials" through one shared handle (the
    /// serial shape) or one handle per trial (the sharded shape).
    fn record_trial(handle: &mut ObsHandle, index: u64) {
        let trial = handle.begin_span(0, || SpanKind::Trial { index, seed: index });
        let inner = handle.begin_span(0, || SpanKind::Scope { name: "work" });
        handle.end_span(inner, 5, SpanStatus::Ok, CostSnapshot::ZERO);
        handle.end_span(
            trial,
            5,
            SpanStatus::Trial {
                disposition: "correct",
            },
            CostSnapshot::ZERO,
        );
    }

    #[test]
    fn merged_shards_match_a_serial_recording() {
        let serial_ring = RingBufferObserver::shared(64);
        let mut serial = ObsHandle::new(serial_ring.clone());
        for i in 0..3 {
            record_trial(&mut serial, i);
        }

        let shards: Vec<Vec<Event>> = (0..3)
            .map(|i| {
                let collector = Arc::new(CollectorObserver::new());
                let mut handle = ObsHandle::new(collector.clone());
                record_trial(&mut handle, i);
                collector.take()
            })
            .collect();

        assert_eq!(merge_shards(shards), serial_ring.events());
    }

    #[test]
    fn collector_assigns_contiguous_seq_and_takes() {
        let c = Arc::new(CollectorObserver::new());
        let mut handle = ObsHandle::new(c.clone());
        record_trial(&mut handle, 0);
        assert_eq!(c.len(), 4);
        let events = c.take();
        assert!(c.is_empty());
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn forward_renumbered_reports_allocated_ids() {
        let c = Arc::new(CollectorObserver::new());
        let mut handle = ObsHandle::new(c.clone());
        record_trial(&mut handle, 0);
        let sink = CollectorObserver::new();
        let allocated = forward_renumbered(c.take(), 10, &sink);
        assert_eq!(allocated, 2);
        let events = sink.into_events();
        // Local ids 1 and 2 shifted to 11 and 12; ROOT parents untouched.
        assert_eq!(events[0].span, 11);
        assert_eq!(events[0].parent, ROOT_SPAN);
        assert_eq!(events[1].span, 12);
        assert_eq!(events[1].parent, 11);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_shards(Vec::new()).is_empty());
        assert!(merge_shards(vec![Vec::new(), Vec::new()]).is_empty());
    }

    /// Produces one recorded shard per trial, for feeding mergers.
    fn recorded_shards(n: u64) -> Vec<Vec<Event>> {
        (0..n)
            .map(|i| {
                let collector = Arc::new(CollectorObserver::new());
                let mut handle = ObsHandle::new(collector.clone());
                record_trial(&mut handle, i);
                collector.take()
            })
            .collect()
    }

    #[test]
    fn streaming_merge_matches_batch_merge_for_out_of_order_submits() {
        let shards = recorded_shards(6);
        let expected = merge_shards(shards.clone());

        let sink = Arc::new(CollectorObserver::new());
        let merger = StreamingMerger::new(sink.clone());
        // Worst-case order: last first.
        for (i, shard) in shards.into_iter().enumerate().rev() {
            merger.submit(i, shard);
        }
        assert_eq!(merger.forwarded(), 6);
        assert_eq!(sink.take(), expected);
    }

    #[test]
    fn streaming_merge_forwards_eagerly_and_tracks_peak() {
        let shards = recorded_shards(4);
        let sink = Arc::new(CollectorObserver::new());
        let merger = StreamingMerger::new(sink.clone());
        let mut iter = shards.into_iter().enumerate();

        // In-order submission: each shard is forwarded immediately, so at
        // most one shard is ever buffered.
        let (i0, s0) = iter.next().unwrap();
        merger.submit(i0, s0);
        assert_eq!(merger.forwarded(), 1);
        assert!(!sink.is_empty(), "first shard must stream out immediately");
        for (i, s) in iter {
            merger.submit(i, s);
        }
        assert_eq!(merger.peak_buffered(), 1);
    }

    #[test]
    fn streaming_merge_recycles_buffers_through_the_pool() {
        let shards = recorded_shards(3);
        let pool = Arc::new(ShardPool::new());
        let sink = Arc::new(CollectorObserver::new());
        let merger = StreamingMerger::new(sink).with_pool(pool.clone());
        for (i, shard) in shards.into_iter().enumerate() {
            merger.submit(i, shard);
        }
        assert_eq!(pool.spares(), 3);
        // Checked-out buffers come back empty but capacity-warm.
        let buf = pool.check_out();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 4);
        assert_eq!(pool.spares(), 2);
    }

    #[test]
    fn windowed_merge_blocks_runahead_submitters() {
        use std::sync::mpsc;

        let shards = recorded_shards(5);
        let expected = merge_shards(shards.clone());
        let sink = Arc::new(CollectorObserver::new());
        let merger = Arc::new(StreamingMerger::new(sink.clone()).with_window(2));

        // Submit trial 3 from another thread: 3 - next(0) >= 2, so it
        // must block until trials 0..=1 land.
        let (tx, rx) = mpsc::channel();
        let runner = {
            let merger = Arc::clone(&merger);
            let shard = shards[3].clone();
            std::thread::spawn(move || {
                tx.send(()).unwrap();
                merger.submit(3, shard);
            })
        };
        rx.recv().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(
            merger.forwarded(),
            0,
            "run-ahead shard must not be accepted before the window opens"
        );

        for i in [0usize, 1, 2, 4] {
            merger.submit(i, shards[i].clone());
        }
        runner.join().unwrap();
        assert_eq!(merger.forwarded(), 5);
        assert!(merger.peak_buffered() <= 2);
        assert_eq!(sink.take(), expected);
    }

    /// The window boundary is exact: with window `w` and frontier at
    /// `next`, index `next + w - 1` is the furthest admissible
    /// submission (`index - next >= window` blocks), and `next + w`
    /// blocks.
    #[test]
    fn windowed_merge_boundary_is_exact() {
        use std::sync::mpsc;

        let shards = recorded_shards(6);
        let window = 3;
        let sink = Arc::new(CollectorObserver::new());
        let merger = Arc::new(StreamingMerger::new(sink).with_window(window));

        // Frontier is at 0. Index 2 == next + window - 1 must be
        // admitted without blocking (submit on this thread would hang
        // forever if the guard were `index - next >= window - 1`).
        merger.submit(2, shards[2].clone());
        assert_eq!(merger.forwarded(), 0, "gap at 0 not filled yet");

        // Index 3 == next + window sits exactly on the boundary
        // (3 - 0 >= 3) and must block.
        let (tx, rx) = mpsc::channel();
        let blocked = {
            let merger = Arc::clone(&merger);
            let shard = shards[3].clone();
            std::thread::spawn(move || {
                tx.send(()).unwrap();
                merger.submit(3, shard);
            })
        };
        rx.recv().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        {
            let state = merger.state.lock().unwrap();
            assert!(
                !state.pending.contains_key(&3),
                "index == next + window must wait outside the buffer"
            );
        }

        // Filling the gap advances the frontier past the boundary and
        // releases the blocked submitter.
        merger.submit(0, shards[0].clone());
        merger.submit(1, shards[1].clone());
        blocked.join().unwrap();
        for i in 4..6 {
            merger.submit(i, shards[i].clone());
        }
        assert_eq!(merger.forwarded(), 6);
        assert!(merger.peak_buffered() <= window);
    }

    /// Adversarial schedule: the owner of the gap trial is delayed while
    /// every other submitter races as far ahead as it can. The window
    /// must hold as a hard bound on buffered shards, nobody may
    /// deadlock, and the merged stream must still be byte-identical to
    /// the batch merge.
    #[test]
    fn windowed_merge_survives_runahead_stampede() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let n = 64;
        let window = 4;
        let shards = recorded_shards(n as u64);
        let expected = merge_shards(shards.clone());

        let sink = Arc::new(CollectorObserver::new());
        let merger = Arc::new(StreamingMerger::new(sink.clone()).with_window(window));
        let racers = 4;
        let barrier = Arc::new(Barrier::new(racers + 1));
        let max_seen_ahead = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|scope| {
            // Four racers split trials 1.. among themselves by stride
            // and submit as fast as they can.
            for r in 0..racers {
                let merger = Arc::clone(&merger);
                let barrier = Arc::clone(&barrier);
                let max_seen_ahead = Arc::clone(&max_seen_ahead);
                let shards = &shards;
                scope.spawn(move || {
                    barrier.wait();
                    let mut i = 1 + r;
                    while i < n {
                        merger.submit(i, shards[i].clone());
                        // How far past the frontier did this submission
                        // land? Sampled after the fact, so it can read
                        // low, never high.
                        let ahead = i.saturating_sub(merger.forwarded());
                        max_seen_ahead.fetch_max(ahead, Ordering::Relaxed);
                        i += racers;
                    }
                });
            }
            // The gap owner holds trial 0 back until the stampede is
            // under way.
            barrier.wait();
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert_eq!(merger.forwarded(), 0, "nothing may pass the gap");
            merger.submit(0, shards[0].clone());
        });

        assert_eq!(merger.forwarded(), n);
        assert!(
            merger.peak_buffered() <= window,
            "peak {} exceeded window {}",
            merger.peak_buffered(),
            window
        );
        assert!(
            max_seen_ahead.load(Ordering::Relaxed) < window,
            "a submission landed {} ahead of the frontier (window {})",
            max_seen_ahead.load(Ordering::Relaxed),
            window
        );
        assert_eq!(sink.take(), expected);
    }

    #[test]
    fn abort_releases_blocked_submitters_and_discards_late_submissions() {
        use std::sync::mpsc;

        let shards = recorded_shards(4);
        let sink = Arc::new(CollectorObserver::new());
        let merger = Arc::new(StreamingMerger::new(sink.clone()).with_window(1));

        // Trial 1 blocks on the window (1 - 0 >= 1): the trial-0
        // submitter is about to panic, so without abort this thread
        // would wait forever.
        let (tx, rx) = mpsc::channel();
        let blocked = {
            let merger = Arc::clone(&merger);
            let shard = shards[1].clone();
            std::thread::spawn(move || {
                tx.send(()).unwrap();
                merger.submit(1, shard);
            })
        };
        rx.recv().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        merger.abort();
        blocked.join().expect("abort must release the submitter");

        // Submissions after the abort are discarded, not forwarded.
        merger.submit(0, shards[0].clone());
        assert_eq!(merger.forwarded(), 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn with_start_continues_an_interrupted_merge() {
        let shards = recorded_shards(6);
        let expected = merge_shards(shards.clone());

        // First run: trials 0..3 forwarded, then the process "dies".
        let first_sink = Arc::new(CollectorObserver::new());
        let first = StreamingMerger::new(first_sink.clone());
        let mut offset = 0;
        for (i, shard) in shards.iter().take(3).cloned().enumerate() {
            first.submit(i, shard);
            offset = spans_allocated(&first_sink.lock()) as u64;
        }
        let replayed: Vec<Event> = first_sink.take();

        // Resume: replay the persisted prefix into a fresh sink, then
        // continue the merge from trial 3 with the offset carried over.
        let sink = Arc::new(CollectorObserver::new());
        for event in replayed {
            sink.lock().push(event);
        }
        let resumed = StreamingMerger::new(sink.clone()).with_start(3, offset);
        for (i, shard) in shards.iter().cloned().enumerate().skip(3) {
            resumed.submit(i, shard);
        }
        assert_eq!(resumed.forwarded(), 6);
        assert_eq!(sink.take(), expected);
    }

    #[test]
    fn tap_sees_renumbered_events_in_trial_order() {
        let shards = recorded_shards(4);
        let expected = merge_shards(shards.clone());

        let tapped: Arc<Mutex<Vec<(usize, Vec<Event>)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::new(CollectorObserver::new());
        let merger = {
            let tapped = Arc::clone(&tapped);
            StreamingMerger::new(sink.clone())
                .with_tap(move |i, events| tapped.lock().unwrap().push((i, events.to_vec())))
        };
        // Reverse order: the tap must still fire 0,1,2,3.
        for (i, shard) in shards.into_iter().enumerate().rev() {
            merger.submit(i, shard);
        }
        let tapped = tapped.lock().unwrap();
        assert_eq!(
            tapped.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // Replaying the tapped slices through a fresh seq-assigning sink
        // reproduces the merged stream exactly: span ids are already
        // campaign-wide, and the sink restores global seqs.
        let replay = CollectorObserver::new();
        for (_, events) in tapped.iter() {
            for event in events {
                replay.record(*event);
            }
        }
        assert_eq!(replay.into_events(), expected);
        assert_eq!(sink.take(), expected);
    }

    #[test]
    fn worker_shard_is_reused_per_thread() {
        let first = with_worker_shard(|shard| {
            assert!(shard.is_empty());
            Arc::as_ptr(shard)
        });
        let second = with_worker_shard(|shard| Arc::as_ptr(shard));
        assert_eq!(first, second, "same thread must reuse its collector");

        // Re-entrant use falls back to a distinct collector.
        with_worker_shard(|outer| {
            let outer_ptr = Arc::as_ptr(outer);
            with_worker_shard(|inner| {
                assert_ne!(outer_ptr, Arc::as_ptr(inner));
            });
        });
    }

    #[test]
    fn install_buffer_recycles_capacity() {
        let c = Arc::new(CollectorObserver::new());
        let mut handle = ObsHandle::new(c.clone());
        record_trial(&mut handle, 0);
        let events = c.take();
        let capacity = events.capacity();
        c.install_buffer(events);
        assert!(c.is_empty());
        assert!(c.take().capacity() >= capacity.min(4));
    }

    #[test]
    fn worker_arena_reuses_collector_and_id_allocator() {
        let (first_collector, first_events) = with_worker_arena(|arena| {
            let mut handle = arena.handle();
            record_trial(&mut handle, 0);
            (Arc::as_ptr(arena.collector()), arena.collector().take())
        });
        let (second_collector, second_events) = with_worker_arena(|arena| {
            let mut handle = arena.handle();
            record_trial(&mut handle, 1);
            (Arc::as_ptr(arena.collector()), arena.collector().take())
        });
        assert_eq!(
            first_collector, second_collector,
            "same thread must reuse its arena"
        );
        // The pooled id allocator resets per handle: both trials get the
        // same shard-local span ids, exactly as two fresh handles would.
        let ids = |events: &[Event]| events.iter().map(|e| e.span).collect::<Vec<_>>();
        assert_eq!(ids(&first_events), ids(&second_events));
    }

    #[test]
    fn dry_pool_checkout_prewarms_to_high_water() {
        let pool = ShardPool::new();
        assert_eq!(pool.check_out().capacity(), 0, "no history: no reserve");
        pool.check_in(Vec::with_capacity(64));
        let warm = pool.check_out();
        assert!(warm.capacity() >= 64, "pooled buffer keeps its capacity");
        // Pool is dry again, but the high-water mark is remembered: a
        // fresh buffer arrives pre-reserved instead of growing from zero.
        let fresh = pool.check_out();
        assert!(fresh.capacity() >= 64, "dry checkout mirrors high water");
    }

    #[test]
    fn in_order_submissions_never_buffer() {
        let sink = Arc::new(CollectorObserver::new());
        let merger = StreamingMerger::new(sink.clone());
        for i in 0..8 {
            let collector = Arc::new(CollectorObserver::new());
            let mut handle = ObsHandle::new(collector.clone());
            record_trial(&mut handle, i);
            merger.submit(i as usize, collector.take());
        }
        assert_eq!(merger.forwarded(), 8);
        assert_eq!(
            merger.peak_buffered(),
            1,
            "in-order submissions bypass the pending map"
        );
        assert_eq!(sink.take().len(), 8 * 4);
    }
}
