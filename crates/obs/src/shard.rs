//! Sharded capture: record event streams on independent shards (one per
//! trial or per worker) and merge them back into a single stream that is
//! indistinguishable from a serial recording.
//!
//! A parallel Monte-Carlo campaign cannot share one [`ObsHandle`] across
//! worker threads without interleaving the streams of concurrent trials
//! and allocating span ids in scheduling order — both of which destroy
//! the deterministic-replay guarantee. Instead, every trial records into
//! its own [`CollectorObserver`] through its own handle (span ids start
//! at 1 per shard), and [`merge_shards`] stitches the shards together in
//! trial order, renumbering span ids exactly as one shared allocator
//! would have assigned them. The merged stream is therefore *bit-for-bit
//! identical* to what the serial traced run records, so every downstream
//! consumer — `split_trials`, `TraceSummary`, exporters — works unchanged
//! on parallel campaigns.
//!
//! [`ObsHandle`]: crate::ObsHandle

use std::sync::Mutex;

use crate::event::{Event, EventKind, ROOT_SPAN};
use crate::observer::Observer;

/// Unbounded in-memory capture for one shard (one trial or worker).
///
/// Unlike [`RingBufferObserver`](crate::RingBufferObserver) it never
/// evicts and does not pre-allocate capacity, so creating one per trial
/// is cheap. Sequence numbers are assigned contiguously from 0 in record
/// order, shard-locally.
#[derive(Default)]
pub struct CollectorObserver {
    events: Mutex<Vec<Event>>,
}

impl CollectorObserver {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Takes the recorded events out, leaving the collector empty.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Consumes the collector, returning the recorded events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
            .into_inner()
            .expect("collector lock is never poisoned")
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events
            .lock()
            .expect("collector lock is never poisoned")
    }
}

impl Observer for CollectorObserver {
    fn record(&self, mut event: Event) {
        let mut events = self.lock();
        event.seq = events.len() as u64;
        events.push(event);
    }
}

/// The number of span ids a shard's local allocator consumed: every
/// `SpanStart` allocated exactly one id.
fn spans_allocated(events: &[Event]) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SpanStart { .. }))
        .count() as u64
}

/// Renumbers one shard's span ids into the campaign-wide id space and
/// forwards its events to `sink` in order.
///
/// Shard-local handles allocate ids `1..=k` contiguously in span-start
/// order (see [`ObsHandle::new`](crate::ObsHandle::new)), so the remap is
/// the affine shift `local + offset` with `ROOT_SPAN` left untouched —
/// exactly the ids a single shared allocator would have handed out had
/// the shards been recorded one after another. Returns the number of ids
/// the shard consumed so the caller can advance its allocator cursor.
pub fn forward_renumbered(events: Vec<Event>, offset: u64, sink: &dyn Observer) -> u64 {
    let allocated = spans_allocated(&events);
    for mut event in events {
        if event.span != ROOT_SPAN {
            event.span += offset;
        }
        if event.parent != ROOT_SPAN {
            event.parent += offset;
        }
        sink.record(event);
    }
    allocated
}

/// Merges shard streams (each recorded through its own fresh
/// [`ObsHandle`], ids starting at 1) into one flat stream, in shard
/// order, renumbering span ids and sequence numbers as a single serial
/// recording would have. See the module docs for why the result is
/// bit-for-bit identical to the serial stream.
#[must_use]
pub fn merge_shards(shards: Vec<Vec<Event>>) -> Vec<Event> {
    let merged = CollectorObserver::new();
    let mut offset = 0;
    for shard in shards {
        offset += forward_renumbered(shard, offset, &merged);
    }
    merged.into_events()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CostSnapshot, SpanKind, SpanStatus};
    use crate::observer::{ObsHandle, RingBufferObserver};
    use std::sync::Arc;

    /// Records `trials` two-span "trials" through one shared handle (the
    /// serial shape) or one handle per trial (the sharded shape).
    fn record_trial(handle: &mut ObsHandle, index: u64) {
        let trial = handle.begin_span(0, || SpanKind::Trial { index, seed: index });
        let inner = handle.begin_span(0, || SpanKind::Scope { name: "work" });
        handle.end_span(inner, 5, SpanStatus::Ok, CostSnapshot::ZERO);
        handle.end_span(
            trial,
            5,
            SpanStatus::Trial {
                disposition: "correct",
            },
            CostSnapshot::ZERO,
        );
    }

    #[test]
    fn merged_shards_match_a_serial_recording() {
        let serial_ring = RingBufferObserver::shared(64);
        let mut serial = ObsHandle::new(serial_ring.clone());
        for i in 0..3 {
            record_trial(&mut serial, i);
        }

        let shards: Vec<Vec<Event>> = (0..3)
            .map(|i| {
                let collector = Arc::new(CollectorObserver::new());
                let mut handle = ObsHandle::new(collector.clone());
                record_trial(&mut handle, i);
                collector.take()
            })
            .collect();

        assert_eq!(merge_shards(shards), serial_ring.events());
    }

    #[test]
    fn collector_assigns_contiguous_seq_and_takes() {
        let c = Arc::new(CollectorObserver::new());
        let mut handle = ObsHandle::new(c.clone());
        record_trial(&mut handle, 0);
        assert_eq!(c.len(), 4);
        let events = c.take();
        assert!(c.is_empty());
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn forward_renumbered_reports_allocated_ids() {
        let c = Arc::new(CollectorObserver::new());
        let mut handle = ObsHandle::new(c.clone());
        record_trial(&mut handle, 0);
        let sink = CollectorObserver::new();
        let allocated = forward_renumbered(c.take(), 10, &sink);
        assert_eq!(allocated, 2);
        let events = sink.into_events();
        // Local ids 1 and 2 shifted to 11 and 12; ROOT parents untouched.
        assert_eq!(events[0].span, 11);
        assert_eq!(events[0].parent, ROOT_SPAN);
        assert_eq!(events[1].span, 12);
        assert_eq!(events[1].parent, 11);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_shards(Vec::new()).is_empty());
        assert!(merge_shards(vec![Vec::new(), Vec::new()]).is_empty());
    }
}
