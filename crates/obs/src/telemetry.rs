//! Lock-free campaign telemetry: the flight recorder's data plane.
//!
//! The Monte-Carlo engine (worker pool, chunked claiming, streaming
//! merge, checkpoints, chaos) needs counters and latency histograms that
//! can be bumped from the hottest paths in the workspace — inside trials
//! that cost a few hundred nanoseconds — without a `Mutex` anywhere near
//! the write side. [`MetricsRegistry`](crate::MetricsRegistry) locks a
//! `BTreeMap` per write and is therefore the wrong tool inside workers;
//! this module is the replacement:
//!
//! - every recording thread owns an `Arc<`[`TelemetryShard`]`>` of
//!   relaxed atomics (registered once, cached in a thread-local) that
//!   only it ever writes, so a counter bump is a plain relaxed
//!   load + store — no locked read-modify-write on the record path;
//! - recording is gated on a single process-wide `AtomicBool`: with the
//!   recorder off, every hook is one relaxed load and a branch — no
//!   clock reads, no shard lookup;
//! - aggregation walks the shard registry *on demand*
//!   ([`Telemetry::snapshot`]) and sums into plain [`Histogram`]s, so
//!   readers (the background monitor, exporters) never slow writers.
//!
//! The counter and timer sets are closed enums rather than string keys:
//! shards are fixed-size arrays indexed by discriminant, which is what
//! keeps the hot path free of hashing and allocation.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::Histogram;

/// Fixed upper bucket bounds (nanoseconds) for all runtime-profiling
/// histograms: ~4× steps from 1 µs to 1 s. Sub-microsecond samples land
/// in the first bucket; multi-second stalls land in the overflow bucket
/// (whose observed max is still tracked).
pub const NS_BUCKETS: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
];

/// Fixed upper bucket bounds for *depth* histograms (queue occupancy
/// sampled at enqueue time): powers of two from 1 to 1024. Same ladder
/// length as [`NS_BUCKETS`] so every histogram shard stays one fixed-size
/// array regardless of which ladder a timer uses.
pub const DEPTH_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024];

/// A monotonic engine counter. Each variant is one metric; see
/// [`Counter::name`] for the export name and [`Counter::help`] for what
/// it counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Trials campaigns have committed to run (added up front per run).
    TrialsScheduled,
    /// Trials that delivered a correct result.
    TrialsCorrect,
    /// Trials that failed silently (undetected).
    TrialsUndetected,
    /// Trials that failed fail-stop (detected).
    TrialsDetected,
    /// Work chunks claimed from scheduling cursors.
    ChunksClaimed,
    /// Work chunks fully executed (claimed − completed ≈ busy workers).
    ChunksCompleted,
    /// Parallel regions submitted to the worker pool.
    PoolRegions,
    /// Worker panics caught by the pool (first payload kept per region).
    PoolPanicsCaught,
    /// Worker panics beyond the kept one, suppressed with a count.
    PoolPanicsSuppressed,
    /// Nanoseconds workers spent executing claimed chunks.
    WorkerBusyNs,
    /// Nanoseconds pool workers spent parked waiting for work.
    WorkerIdleNs,
    /// Times a traced-campaign submitter blocked on the merge window.
    MergerStalls,
    /// Trial shards forwarded by streaming mergers.
    MergerTrialsForwarded,
    /// Checkpoint batches durably flushed.
    CheckpointCommits,
    /// Trials committed across all checkpoint flushes.
    CheckpointTrialsCommitted,
    /// Scripted chaos worker kills that fired.
    ChaosKills,
    /// Scripted chaos cancel fuses that tripped mid-trial.
    ChaosCancels,
    /// Scripted chaos scheduling delays injected into chunks.
    ChaosDelays,
    /// Pattern runs recorded by the Figure-1 engines.
    PatternRuns,
    /// Pattern alternatives that actually executed.
    VariantsExecuted,
    /// Pattern alternatives skipped because the verdict was fixed.
    VariantsSkipped,
    /// Pattern alternatives cooperatively cancelled mid-flight.
    VariantsCancelled,
    /// Requests that arrived at the service event-loop runtime.
    ServiceArrivals,
    /// Requests admitted into execution (arrived − admitted ≈ waiting).
    ServiceAdmitted,
    /// Requests shed at admission because the queue was full.
    ServiceRejected,
    /// Requests that completed with an acceptable response.
    ServiceOk,
    /// Requests that exhausted every attempt and failed.
    ServiceFailed,
    /// Requests abandoned because their deadline budget expired.
    ServiceDeadlineExceeded,
    /// Requests parked in the bounded backpressure queue.
    ServiceEnqueued,
    /// Requests released from the backpressure queue into execution.
    ServiceDequeued,
    /// Hedge (duplicate) attempts fired by the hedged policy.
    ServiceHedgesFired,
    /// Requests whose winning response came from a hedge attempt.
    ServiceHedgesWon,
    /// Outstanding attempts cancelled when a sibling won first.
    ServiceHedgesCancelled,
    /// Sequential failover attempts fired after a primary failure.
    ServiceFailovers,
    /// Converter operation lookups that fell through unmapped.
    ServiceConverterPassthrough,
    /// Per-shard event loops launched by the sharded runtime.
    ServiceShardRuns,
    /// Circuit breakers that tripped Closed → Open.
    ServiceBreakerOpens,
    /// Circuit breakers that moved Open → HalfOpen after cooldown.
    ServiceBreakerHalfOpens,
    /// Circuit breakers that closed after successful half-open probes.
    ServiceBreakerCloses,
    /// Provider rotation slots skipped because the circuit refused.
    ServiceBreakerSkips,
    /// Requests shed at arrival because every circuit was open.
    ServiceBreakerShed,
    /// Individual attempts that completed unsuccessfully.
    ServiceAttemptsFailed,
}

impl Counter {
    /// Every counter, in declaration (= shard index) order.
    pub const ALL: [Counter; 42] = [
        Counter::TrialsScheduled,
        Counter::TrialsCorrect,
        Counter::TrialsUndetected,
        Counter::TrialsDetected,
        Counter::ChunksClaimed,
        Counter::ChunksCompleted,
        Counter::PoolRegions,
        Counter::PoolPanicsCaught,
        Counter::PoolPanicsSuppressed,
        Counter::WorkerBusyNs,
        Counter::WorkerIdleNs,
        Counter::MergerStalls,
        Counter::MergerTrialsForwarded,
        Counter::CheckpointCommits,
        Counter::CheckpointTrialsCommitted,
        Counter::ChaosKills,
        Counter::ChaosCancels,
        Counter::ChaosDelays,
        Counter::PatternRuns,
        Counter::VariantsExecuted,
        Counter::VariantsSkipped,
        Counter::VariantsCancelled,
        Counter::ServiceArrivals,
        Counter::ServiceAdmitted,
        Counter::ServiceRejected,
        Counter::ServiceOk,
        Counter::ServiceFailed,
        Counter::ServiceDeadlineExceeded,
        Counter::ServiceEnqueued,
        Counter::ServiceDequeued,
        Counter::ServiceHedgesFired,
        Counter::ServiceHedgesWon,
        Counter::ServiceHedgesCancelled,
        Counter::ServiceFailovers,
        Counter::ServiceConverterPassthrough,
        Counter::ServiceShardRuns,
        Counter::ServiceBreakerOpens,
        Counter::ServiceBreakerHalfOpens,
        Counter::ServiceBreakerCloses,
        Counter::ServiceBreakerSkips,
        Counter::ServiceBreakerShed,
        Counter::ServiceAttemptsFailed,
    ];

    /// Number of counters (shard array length).
    pub const COUNT: usize = Counter::ALL.len();

    /// The snake-case export name (without any exporter prefix/suffix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::TrialsScheduled => "trials_scheduled",
            Counter::TrialsCorrect => "trials_correct",
            Counter::TrialsUndetected => "trials_undetected",
            Counter::TrialsDetected => "trials_detected",
            Counter::ChunksClaimed => "chunks_claimed",
            Counter::ChunksCompleted => "chunks_completed",
            Counter::PoolRegions => "pool_regions",
            Counter::PoolPanicsCaught => "pool_panics_caught",
            Counter::PoolPanicsSuppressed => "pool_panics_suppressed",
            Counter::WorkerBusyNs => "worker_busy_ns",
            Counter::WorkerIdleNs => "worker_idle_ns",
            Counter::MergerStalls => "merger_stalls",
            Counter::MergerTrialsForwarded => "merger_trials_forwarded",
            Counter::CheckpointCommits => "checkpoint_commits",
            Counter::CheckpointTrialsCommitted => "checkpoint_trials_committed",
            Counter::ChaosKills => "chaos_kills",
            Counter::ChaosCancels => "chaos_cancels",
            Counter::ChaosDelays => "chaos_delays",
            Counter::PatternRuns => "pattern_runs",
            Counter::VariantsExecuted => "variants_executed",
            Counter::VariantsSkipped => "variants_skipped",
            Counter::VariantsCancelled => "variants_cancelled",
            Counter::ServiceArrivals => "service_arrivals",
            Counter::ServiceAdmitted => "service_admitted",
            Counter::ServiceRejected => "service_rejected",
            Counter::ServiceOk => "service_ok",
            Counter::ServiceFailed => "service_failed",
            Counter::ServiceDeadlineExceeded => "service_deadline_exceeded",
            Counter::ServiceEnqueued => "service_enqueued",
            Counter::ServiceDequeued => "service_dequeued",
            Counter::ServiceHedgesFired => "service_hedges_fired",
            Counter::ServiceHedgesWon => "service_hedges_won",
            Counter::ServiceHedgesCancelled => "service_hedges_cancelled",
            Counter::ServiceFailovers => "service_failovers",
            Counter::ServiceConverterPassthrough => "service_converter_passthrough",
            Counter::ServiceShardRuns => "service_shard_runs",
            Counter::ServiceBreakerOpens => "service_breaker_opens",
            Counter::ServiceBreakerHalfOpens => "service_breaker_half_opens",
            Counter::ServiceBreakerCloses => "service_breaker_closes",
            Counter::ServiceBreakerSkips => "service_breaker_skips",
            Counter::ServiceBreakerShed => "service_breaker_shed",
            Counter::ServiceAttemptsFailed => "service_attempts_failed",
        }
    }

    /// One-line description (the Prometheus `# HELP` text).
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Counter::TrialsScheduled => "Trials campaigns committed to run",
            Counter::TrialsCorrect => "Trials that delivered a correct result",
            Counter::TrialsUndetected => "Trials that failed without detection",
            Counter::TrialsDetected => "Trials that failed fail-stop",
            Counter::ChunksClaimed => "Work chunks claimed from scheduling cursors",
            Counter::ChunksCompleted => "Work chunks fully executed",
            Counter::PoolRegions => "Parallel regions submitted to the worker pool",
            Counter::PoolPanicsCaught => "Worker panics caught by the pool",
            Counter::PoolPanicsSuppressed => "Worker panics suppressed beyond the kept payload",
            Counter::WorkerBusyNs => "Nanoseconds workers spent executing chunks",
            Counter::WorkerIdleNs => "Nanoseconds pool workers spent waiting for work",
            Counter::MergerStalls => "Submitters blocked on the streaming-merge window",
            Counter::MergerTrialsForwarded => "Trial shards forwarded by streaming mergers",
            Counter::CheckpointCommits => "Checkpoint batches durably flushed",
            Counter::CheckpointTrialsCommitted => "Trials committed by checkpoint flushes",
            Counter::ChaosKills => "Scripted chaos worker kills fired",
            Counter::ChaosCancels => "Scripted chaos cancel fuses tripped",
            Counter::ChaosDelays => "Scripted chaos chunk delays injected",
            Counter::PatternRuns => "Pattern runs recorded by the Figure-1 engines",
            Counter::VariantsExecuted => "Pattern alternatives executed",
            Counter::VariantsSkipped => "Pattern alternatives skipped by early exit",
            Counter::VariantsCancelled => "Pattern alternatives cancelled mid-flight",
            Counter::ServiceArrivals => "Requests arrived at the service runtime",
            Counter::ServiceAdmitted => "Requests admitted into execution",
            Counter::ServiceRejected => "Requests shed at admission (queue full)",
            Counter::ServiceOk => "Requests completed with an acceptable response",
            Counter::ServiceFailed => "Requests that exhausted every attempt",
            Counter::ServiceDeadlineExceeded => "Requests abandoned past their deadline budget",
            Counter::ServiceEnqueued => "Requests parked in the backpressure queue",
            Counter::ServiceDequeued => "Requests released from the backpressure queue",
            Counter::ServiceHedgesFired => "Hedge attempts fired by the hedged policy",
            Counter::ServiceHedgesWon => "Requests won by a hedge attempt",
            Counter::ServiceHedgesCancelled => "Attempts cancelled after a sibling won",
            Counter::ServiceFailovers => "Sequential failover attempts fired",
            Counter::ServiceConverterPassthrough => "Converter operation lookups left unmapped",
            Counter::ServiceShardRuns => "Per-shard event loops launched",
            Counter::ServiceBreakerOpens => "Circuit breakers tripped open",
            Counter::ServiceBreakerHalfOpens => "Circuit breakers entering half-open probing",
            Counter::ServiceBreakerCloses => "Circuit breakers closed after probes",
            Counter::ServiceBreakerSkips => "Rotation slots skipped on an open circuit",
            Counter::ServiceBreakerShed => "Requests shed with every circuit open",
            Counter::ServiceAttemptsFailed => "Individual attempts completed unsuccessfully",
        }
    }
}

/// A wall-clock latency histogram (nanosecond samples over
/// [`NS_BUCKETS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Timer {
    /// Duration of one trial (sampled — see the campaign runner).
    TrialNs,
    /// Latency of claiming a chunk from the scheduling cursor.
    ChunkClaimNs,
    /// Duration of executing one claimed chunk.
    ChunkRunNs,
    /// Time a submitter spent blocked on the streaming-merge window.
    MergerStallNs,
    /// Duration of one checkpoint batch write+flush (commit lag).
    CheckpointCommitNs,
    /// Virtual-time end-to-end request latency in the service runtime.
    ServiceLatencyNs,
    /// Virtual time requests spent parked in the backpressure queue.
    ServiceQueueWaitNs,
    /// Backpressure queue depth sampled at each enqueue
    /// ([`DEPTH_BUCKETS`] ladder, not nanoseconds).
    ServiceQueueDepth,
    /// Virtual time a circuit breaker spent Open before closing again.
    ServiceBreakerOpenNs,
}

impl Timer {
    /// Every timer, in declaration (= shard index) order.
    pub const ALL: [Timer; 9] = [
        Timer::TrialNs,
        Timer::ChunkClaimNs,
        Timer::ChunkRunNs,
        Timer::MergerStallNs,
        Timer::CheckpointCommitNs,
        Timer::ServiceLatencyNs,
        Timer::ServiceQueueWaitNs,
        Timer::ServiceQueueDepth,
        Timer::ServiceBreakerOpenNs,
    ];

    /// Number of timers (shard array length).
    pub const COUNT: usize = Timer::ALL.len();

    /// The snake-case export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Timer::TrialNs => "trial_ns",
            Timer::ChunkClaimNs => "chunk_claim_ns",
            Timer::ChunkRunNs => "chunk_run_ns",
            Timer::MergerStallNs => "merger_stall_ns",
            Timer::CheckpointCommitNs => "checkpoint_commit_ns",
            Timer::ServiceLatencyNs => "service_latency_ns",
            Timer::ServiceQueueWaitNs => "service_queue_wait_ns",
            Timer::ServiceQueueDepth => "service_queue_depth",
            Timer::ServiceBreakerOpenNs => "service_breaker_open_ns",
        }
    }

    /// The bucket ladder this timer's histogram uses. All latency timers
    /// share [`NS_BUCKETS`]; occupancy gauges like queue depth use
    /// [`DEPTH_BUCKETS`]. Both ladders have the same length, which is
    /// what keeps [`TelemetryShard`] a fixed-size array of fixed-size
    /// histograms.
    #[must_use]
    pub fn buckets(self) -> &'static [u64] {
        match self {
            Timer::ServiceQueueDepth => DEPTH_BUCKETS,
            _ => NS_BUCKETS,
        }
    }

    /// One-line description (the Prometheus `# HELP` text).
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Timer::TrialNs => "Wall-clock duration of sampled trials",
            Timer::ChunkClaimNs => "Latency of claiming a scheduling chunk",
            Timer::ChunkRunNs => "Wall-clock duration of executing one chunk",
            Timer::MergerStallNs => "Time submitters blocked on the merge window",
            Timer::CheckpointCommitNs => "Duration of checkpoint batch commits",
            Timer::ServiceLatencyNs => "Virtual end-to-end service request latency",
            Timer::ServiceQueueWaitNs => "Virtual time requests waited in the queue",
            Timer::ServiceQueueDepth => "Backpressure queue depth at enqueue",
            Timer::ServiceBreakerOpenNs => "Virtual time circuits spent open before closing",
        }
    }
}

/// Single-writer increment: a relaxed load plus a relaxed store instead
/// of a `fetch_add`. Shards are written only by their owning thread (one
/// shard per recording thread, cached thread-locally), so the
/// read-modify-write needs no atomicity — and skipping the locked RMW
/// keeps the monitored hot path to plain loads and stores. Readers
/// aggregating concurrently may miss the very latest increment, which a
/// monitor snapshot tolerates by design.
#[inline]
fn bump(cell: &AtomicU64, delta: u64) {
    cell.store(
        cell.load(Ordering::Relaxed).wrapping_add(delta),
        Ordering::Relaxed,
    );
}

// Every bucket ladder must fit the fixed-size shard arrays.
const _: () = assert!(DEPTH_BUCKETS.len() == NS_BUCKETS.len());

/// One histogram of relaxed atomics over an 11-rung bucket ladder (the
/// ladder itself — [`NS_BUCKETS`] or [`DEPTH_BUCKETS`] — is supplied at
/// record/aggregate time via [`Timer::buckets`]).
#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; NS_BUCKETS.len()],
    overflow: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, value: u64, bounds: &[u64]) {
        let bucket = match bounds.iter().position(|&b| value <= b) {
            Some(i) => &self.buckets[i],
            None => &self.overflow,
        };
        bump(bucket, 1);
        bump(&self.sum, value);
        if value < self.min.load(Ordering::Relaxed) {
            self.min.store(value, Ordering::Relaxed);
        }
        if value > self.max.load(Ordering::Relaxed) {
            self.max.store(value, Ordering::Relaxed);
        }
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.overflow.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// One recording thread's slice of the telemetry: fixed arrays of
/// relaxed atomics, no locks, no allocation after construction.
///
/// Shards are handed out by [`Telemetry::register_shard`]; each shard
/// is written **only by the thread that registered it** (the free
/// functions below enforce this via a thread-local cache), readers sum
/// across all registered shards. That single-writer discipline is what
/// lets the write path use plain relaxed load + store ([`bump`]) instead
/// of locked read-modify-writes, and relaxed ordering is sufficient —
/// every metric is a commutative sum, so a snapshot is "some recent
/// total" rather than a linearizable cut, which is all a monitor needs.
#[derive(Debug)]
pub struct TelemetryShard {
    counters: [AtomicU64; Counter::COUNT],
    timers: [AtomicHistogram; Timer::COUNT],
}

impl TelemetryShard {
    fn new() -> Self {
        TelemetryShard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            timers: std::array::from_fn(|_| AtomicHistogram::new()),
        }
    }

    /// Adds `delta` to `counter` (relaxed single-writer load + store;
    /// see [`bump`] — a shard must only ever be written by the thread
    /// that registered it).
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        bump(&self.counters[counter as usize], delta);
    }

    /// Records a sample into `timer`'s histogram (relaxed), bucketed on
    /// that timer's own ladder ([`Timer::buckets`]).
    #[inline]
    pub fn observe_ns(&self, timer: Timer, ns: u64) {
        self.timers[timer as usize].record(ns, timer.buckets());
    }

    fn reset(&self) {
        for counter in &self.counters {
            counter.store(0, Ordering::Relaxed);
        }
        for timer in &self.timers {
            timer.reset();
        }
    }
}

/// A telemetry registry: the enabled gate plus every shard handed out so
/// far. Most code uses the process-wide [`Telemetry::global`] instance
/// through the free functions below; independent instances exist for
/// tests.
#[derive(Debug)]
pub struct Telemetry {
    enabled: AtomicBool,
    shards: Mutex<Vec<Arc<TelemetryShard>>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide registry behind [`Telemetry::global`].
static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// Mirror of the *global* registry's enabled flag as a plain static:
/// the free-function hooks gate on this fixed address instead of
/// dereferencing the `OnceLock` behind [`Telemetry::global`] first, so
/// the recorder-off path really is a single relaxed load. Kept in sync
/// by [`Telemetry::set_enabled`].
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

impl Telemetry {
    /// Creates a disabled registry with no shards.
    #[must_use]
    pub fn new() -> Self {
        Telemetry {
            enabled: AtomicBool::new(false),
            shards: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide registry (disabled until something — typically a
    /// `CampaignMonitor` — switches it on).
    #[must_use]
    #[inline]
    pub fn global() -> &'static Telemetry {
        GLOBAL.get_or_init(Telemetry::new)
    }

    /// Whether recording is on (one relaxed load — this is the whole
    /// cost of every telemetry hook while the recorder is off).
    #[must_use]
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switches recording on or off. Affects only future hook calls;
    /// already-recorded values stay in the shards.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        if GLOBAL
            .get()
            .is_some_and(|global| std::ptr::eq(self, global))
        {
            GLOBAL_ENABLED.store(on, Ordering::Relaxed);
        }
    }

    /// Registers a new shard (the only lock in the system, taken once
    /// per recording thread, never on the record path).
    #[must_use]
    pub fn register_shard(&self) -> Arc<TelemetryShard> {
        let shard = Arc::new(TelemetryShard::new());
        self.shards
            .lock()
            .expect("telemetry shard registry lock never poisoned")
            .push(Arc::clone(&shard));
        shard
    }

    /// Zeroes every registered shard in place (shards stay registered —
    /// threads keep their cached references). Concurrent writers may
    /// smear a few counts across the reset boundary; call it between
    /// campaigns, not during one, when exact zeros matter.
    pub fn reset(&self) {
        let shards = self
            .shards
            .lock()
            .expect("telemetry shard registry lock never poisoned");
        for shard in shards.iter() {
            shard.reset();
        }
    }

    /// Sums every shard into one consistent-enough snapshot (each cell
    /// is read once, relaxed; see [`TelemetryShard`] for why that is the
    /// right contract here).
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let shards = self
            .shards
            .lock()
            .expect("telemetry shard registry lock never poisoned");
        let mut counters = [0u64; Counter::COUNT];
        for shard in shards.iter() {
            for (total, cell) in counters.iter_mut().zip(shard.counters.iter()) {
                *total = total.wrapping_add(cell.load(Ordering::Relaxed));
            }
        }
        let timers = Timer::ALL
            .iter()
            .map(|&timer| {
                let mut bucket_counts = vec![0u64; timer.buckets().len()];
                let (mut overflow, mut sum) = (0u64, 0u64);
                let (mut min, mut max) = (u64::MAX, 0u64);
                for shard in shards.iter() {
                    let hist = &shard.timers[timer as usize];
                    for (total, cell) in bucket_counts.iter_mut().zip(hist.buckets.iter()) {
                        *total += cell.load(Ordering::Relaxed);
                    }
                    overflow += hist.overflow.load(Ordering::Relaxed);
                    sum = sum.saturating_add(hist.sum.load(Ordering::Relaxed));
                    min = min.min(hist.min.load(Ordering::Relaxed));
                    max = max.max(hist.max.load(Ordering::Relaxed));
                }
                Histogram::from_parts(timer.buckets(), bucket_counts, overflow, sum, min, max)
            })
            .collect();
        TelemetrySnapshot { counters, timers }
    }
}

/// A point-in-time aggregation of every counter and timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    counters: [u64; Counter::COUNT],
    timers: Vec<Histogram>,
}

impl TelemetrySnapshot {
    /// The aggregated value of `counter`.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// The aggregated histogram of `timer`.
    #[must_use]
    pub fn timer(&self, timer: Timer) -> &Histogram {
        &self.timers[timer as usize]
    }

    /// Every counter with its value, in declaration order.
    pub fn counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c, self.counter(c)))
    }

    /// Every timer with its histogram, in declaration order.
    pub fn timers(&self) -> impl Iterator<Item = (Timer, &Histogram)> + '_ {
        Timer::ALL.iter().map(|&t| (t, self.timer(t)))
    }

    /// Trials that finished, whatever their disposition.
    #[must_use]
    pub fn trials_completed(&self) -> u64 {
        self.counter(Counter::TrialsCorrect)
            + self.counter(Counter::TrialsUndetected)
            + self.counter(Counter::TrialsDetected)
    }

    /// Chunks claimed but not yet completed ≈ workers currently busy.
    #[must_use]
    pub fn workers_busy(&self) -> u64 {
        self.counter(Counter::ChunksClaimed)
            .saturating_sub(self.counter(Counter::ChunksCompleted))
    }

    /// Service requests admitted but not yet resolved ≈ requests
    /// currently in flight inside the event-loop runtime.
    #[must_use]
    pub fn service_in_flight(&self) -> u64 {
        let resolved = self.counter(Counter::ServiceOk)
            + self.counter(Counter::ServiceFailed)
            + self.counter(Counter::ServiceDeadlineExceeded);
        self.counter(Counter::ServiceAdmitted)
            .saturating_sub(resolved)
    }

    /// Service requests currently parked in the backpressure queue
    /// (enqueued − dequeued).
    #[must_use]
    pub fn service_queue_depth(&self) -> u64 {
        self.counter(Counter::ServiceEnqueued)
            .saturating_sub(self.counter(Counter::ServiceDequeued))
    }

    /// Service requests that reached a terminal disposition, whatever it
    /// was (ok, failed, deadline-exceeded, or shed at admission).
    #[must_use]
    pub fn service_resolved(&self) -> u64 {
        self.counter(Counter::ServiceOk)
            + self.counter(Counter::ServiceFailed)
            + self.counter(Counter::ServiceDeadlineExceeded)
            + self.counter(Counter::ServiceRejected)
    }

    /// Fraction of pattern alternatives whose full execution early exit
    /// avoided (0 when no pattern runs were recorded).
    #[must_use]
    pub fn variant_work_saved(&self) -> f64 {
        let avoided =
            self.counter(Counter::VariantsSkipped) + self.counter(Counter::VariantsCancelled);
        let total = avoided + self.counter(Counter::VariantsExecuted);
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                avoided as f64 / total as f64
            }
        }
    }
}

thread_local! {
    /// This thread's cached shard of the *global* registry.
    static GLOBAL_SHARD: Cell<Option<&'static TelemetryShard>> = const { Cell::new(None) };
}

#[inline]
fn global_shard() -> &'static TelemetryShard {
    GLOBAL_SHARD.with(|slot| {
        if let Some(shard) = slot.get() {
            return shard;
        }
        let arc = Telemetry::global().register_shard();
        // SAFETY: the global registry keeps its own strong reference to
        // every shard forever (shards are never removed), and this
        // deliberately leaked count pins a second one, so the pointee
        // lives for the rest of the process.
        let shard: &'static TelemetryShard = unsafe { &*Arc::into_raw(arc) };
        slot.set(Some(shard));
        shard
    })
}

/// Whether the global recorder is on (one relaxed load of a plain
/// static — no `OnceLock` dereference on the hook path).
#[must_use]
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// This thread's shard of the global registry when recording is on,
/// `None` (one load, one branch) while it's off. For call sites that
/// bump several counters at once: pay the enabled check and the
/// thread-local lookup once, then `shard.add(..)` directly.
#[must_use]
#[inline]
pub fn active_shard() -> Option<&'static TelemetryShard> {
    enabled().then(global_shard)
}

/// Adds `delta` to `counter` on this thread's shard of the global
/// registry; a no-op (one load, one branch) while recording is off.
#[inline]
pub fn add(counter: Counter, delta: u64) {
    if enabled() {
        global_shard().add(counter, delta);
    }
}

/// Records a nanosecond sample into `timer` on this thread's shard of
/// the global registry; a no-op while recording is off.
#[inline]
pub fn observe_ns(timer: Timer, ns: u64) {
    if enabled() {
        global_shard().observe_ns(timer, ns);
    }
}

/// Starts a wall-clock measurement: `Some(now)` when recording is on,
/// `None` (without touching the clock) when it is off. Pair with
/// [`timer_stop`].
#[must_use]
#[inline]
pub fn timer_start() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Finishes a measurement started by [`timer_start`], recording the
/// elapsed nanoseconds into `timer` and returning them (so call sites
/// can also fold the same span into a counter, e.g. busy time).
#[inline]
pub fn timer_stop(timer: Timer, started: Option<Instant>) -> Option<u64> {
    let started = started?;
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    observe_ns(timer, ns);
    Some(ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_aggregate_across_threads_without_locks_on_record() {
        let telemetry = Telemetry::new();
        let shards: Vec<_> = (0..4).map(|_| telemetry.register_shard()).collect();
        std::thread::scope(|scope| {
            for (t, shard) in shards.iter().enumerate() {
                scope.spawn(move || {
                    for i in 0..100u64 {
                        shard.add(Counter::TrialsCorrect, 1);
                        shard.observe_ns(Timer::TrialNs, (t as u64 + 1) * 1_000 + i);
                    }
                });
            }
        });
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter(Counter::TrialsCorrect), 400);
        assert_eq!(snapshot.counter(Counter::TrialsDetected), 0);
        let hist = snapshot.timer(Timer::TrialNs);
        assert_eq!(hist.count(), 400);
        assert_eq!(hist.min(), Some(1_000));
        assert_eq!(hist.max(), Some(4_099));
    }

    #[test]
    fn snapshot_of_an_empty_registry_is_zero() {
        let telemetry = Telemetry::new();
        let snapshot = telemetry.snapshot();
        for (_, value) in snapshot.counters() {
            assert_eq!(value, 0);
        }
        for (_, hist) in snapshot.timers() {
            assert_eq!(hist.count(), 0);
            assert_eq!(hist.min(), None);
            assert_eq!(hist.quantile(0.5), None);
        }
        assert_eq!(snapshot.trials_completed(), 0);
        assert_eq!(snapshot.workers_busy(), 0);
        assert_eq!(snapshot.variant_work_saved(), 0.0);
    }

    #[test]
    fn reset_zeroes_in_place_and_shards_stay_usable() {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        shard.add(Counter::ChaosKills, 3);
        shard.observe_ns(Timer::MergerStallNs, 5_000_000);
        assert_eq!(telemetry.snapshot().counter(Counter::ChaosKills), 3);
        telemetry.reset();
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter(Counter::ChaosKills), 0);
        assert_eq!(snapshot.timer(Timer::MergerStallNs).count(), 0);
        shard.add(Counter::ChaosKills, 1);
        assert_eq!(telemetry.snapshot().counter(Counter::ChaosKills), 1);
    }

    #[test]
    fn derived_gauges_follow_their_counters() {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        shard.add(Counter::TrialsCorrect, 7);
        shard.add(Counter::TrialsUndetected, 2);
        shard.add(Counter::TrialsDetected, 1);
        shard.add(Counter::ChunksClaimed, 5);
        shard.add(Counter::ChunksCompleted, 3);
        shard.add(Counter::VariantsExecuted, 60);
        shard.add(Counter::VariantsSkipped, 30);
        shard.add(Counter::VariantsCancelled, 10);
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.trials_completed(), 10);
        assert_eq!(snapshot.workers_busy(), 2);
        assert!((snapshot.variant_work_saved() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn timer_helpers_do_not_touch_the_clock_when_disabled() {
        // The global registry defaults to disabled; these must all be
        // no-ops regardless of what other tests have recorded.
        assert_eq!(timer_stop(Timer::TrialNs, None), None);
        // `timer_start` with the recorder off hands back no Instant.
        if !enabled() {
            assert!(timer_start().is_none());
        }
    }

    #[test]
    fn service_gauges_follow_their_counters() {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        shard.add(Counter::ServiceArrivals, 20);
        shard.add(Counter::ServiceAdmitted, 15);
        shard.add(Counter::ServiceOk, 9);
        shard.add(Counter::ServiceFailed, 2);
        shard.add(Counter::ServiceDeadlineExceeded, 1);
        shard.add(Counter::ServiceRejected, 3);
        shard.add(Counter::ServiceEnqueued, 8);
        shard.add(Counter::ServiceDequeued, 6);
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.service_in_flight(), 3);
        assert_eq!(snapshot.service_queue_depth(), 2);
        assert_eq!(snapshot.service_resolved(), 15);
    }

    #[test]
    fn queue_depth_samples_land_on_the_depth_ladder() {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        // Depth samples are small integers; on NS_BUCKETS all of them
        // would collapse into the first (≤ 1 µs) rung. The depth ladder
        // must separate them.
        for depth in [1u64, 3, 7, 100, 5_000] {
            shard.observe_ns(Timer::ServiceQueueDepth, depth);
        }
        let snapshot = telemetry.snapshot();
        let hist = snapshot.timer(Timer::ServiceQueueDepth);
        assert_eq!(hist.bounds(), DEPTH_BUCKETS);
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.overflow(), 1); // 5_000 > 1_024
        assert_eq!(hist.min(), Some(1));
        assert_eq!(hist.max(), Some(5_000));
        // Latency timers keep the nanosecond ladder.
        shard.observe_ns(Timer::ServiceLatencyNs, 2_000);
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.timer(Timer::ServiceLatencyNs).bounds(), NS_BUCKETS);
    }

    #[test]
    fn overflow_samples_keep_observed_max() {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        shard.observe_ns(Timer::CheckpointCommitNs, 5_000_000_000);
        let snapshot = telemetry.snapshot();
        let hist = snapshot.timer(Timer::CheckpointCommitNs);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.overflow(), 1);
        assert_eq!(hist.quantile(0.99), Some(5_000_000_000));
    }
}
