//! Prometheus text exposition format for telemetry snapshots.
//!
//! [`render_telemetry`] turns a [`TelemetrySnapshot`] into the plain-text
//! format Prometheus scrapes: every counter becomes a
//! `redundancy_<name>_total` counter family, every timer becomes a
//! `redundancy_<name>` histogram family with cumulative `_bucket{le=...}`
//! series, `_sum` and `_count`. The campaign monitor writes this to a
//! file atomically (write-then-rename) so a node-exporter-style textfile
//! collector — or a human with `curl`-free eyes — can pick it up.
//!
//! [`validate`] is the matching checker: it parses a rendered exposition
//! back, enforcing comment shape, metric-name syntax, numeric sample
//! values, cumulative bucket monotonicity and `_count` == `+Inf`
//! consistency. The `monitor-smoke` experiment runs it against the file
//! the monitor actually wrote, so format drift fails CI rather than a
//! downstream scrape.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::Histogram;
use crate::telemetry::TelemetrySnapshot;

/// Prefix applied to every exported metric family name.
pub const PROM_PREFIX: &str = "redundancy_";

/// Renders a telemetry snapshot in Prometheus text exposition format.
#[must_use]
pub fn render_telemetry(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (counter, value) in snapshot.counters() {
        let name = format!("{PROM_PREFIX}{}_total", counter.name());
        let _ = writeln!(out, "# HELP {name} {}", counter.help());
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (timer, hist) in snapshot.timers() {
        render_histogram(
            &mut out,
            &format!("{PROM_PREFIX}{}", timer.name()),
            timer.help(),
            hist,
        );
    }
    out
}

/// Appends one histogram family (`# HELP`/`# TYPE`, cumulative
/// `_bucket{le="..."}` series including `+Inf`, `_sum`, `_count`) to
/// `out`.
pub fn render_histogram(out: &mut String, name: &str, help: &str, hist: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (&bound, &count) in hist.bounds().iter().zip(hist.bucket_counts()) {
        cumulative += count;
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
    }
    cumulative += hist.overflow();
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "{name}_sum {}", hist.sum());
    let _ = writeln!(out, "{name}_count {}", hist.count());
}

/// Checks that `text` is well-formed Prometheus text exposition format
/// and internally consistent. Returns the number of metric families on
/// success, or a description of the first problem found.
///
/// Enforced: comment lines are `# HELP`/`# TYPE` with valid metric
/// names; samples are `name{labels} value` with numeric values; within
/// each histogram family the `le` buckets are cumulative
/// (non-decreasing) and `_count` equals the `+Inf` bucket.
///
/// # Errors
///
/// Returns `Err` with a line-numbered message on the first malformed
/// line or inconsistent family.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut families: BTreeMap<String, FamilyCheck> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            validate_comment(comment, lineno, &mut families)?;
        } else {
            validate_sample(line, lineno, &mut families)?;
        }
    }
    for (family, check) in &families {
        check.finish(family)?;
    }
    Ok(families.len())
}

/// Per-family running state while validating.
#[derive(Debug, Default)]
struct FamilyCheck {
    kind: Option<String>,
    last_bucket: Option<(f64, f64)>,
    inf_bucket: Option<f64>,
    count: Option<f64>,
    samples: usize,
}

impl FamilyCheck {
    fn finish(&self, family: &str) -> Result<(), String> {
        if self.kind.as_deref() == Some("histogram") {
            let inf = self
                .inf_bucket
                .ok_or_else(|| format!("histogram {family} has no +Inf bucket"))?;
            let count = self
                .count
                .ok_or_else(|| format!("histogram {family} has no _count sample"))?;
            if (inf - count).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {family}: _count {count} != +Inf bucket {inf}"
                ));
            }
        }
        if self.kind.is_some() && self.samples == 0 {
            return Err(format!("family {family} declared but has no samples"));
        }
        Ok(())
    }
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Strips a histogram-series suffix back to its family name.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            return stem;
        }
    }
    name
}

fn validate_comment(
    comment: &str,
    lineno: usize,
    families: &mut BTreeMap<String, FamilyCheck>,
) -> Result<(), String> {
    let comment = comment.trim_start();
    let (keyword, rest) = comment
        .split_once(' ')
        .ok_or_else(|| format!("line {lineno}: bare comment marker"))?;
    match keyword {
        "HELP" => {
            let name = rest.split_whitespace().next().unwrap_or("");
            if !is_valid_metric_name(name) {
                return Err(format!("line {lineno}: HELP names invalid metric {name:?}"));
            }
            families.entry(name.to_owned()).or_default();
            Ok(())
        }
        "TYPE" => {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !is_valid_metric_name(name) {
                return Err(format!("line {lineno}: TYPE names invalid metric {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            families.entry(name.to_owned()).or_default().kind = Some(kind.to_owned());
            Ok(())
        }
        _ => Err(format!(
            "line {lineno}: comment is neither # HELP nor # TYPE"
        )),
    }
}

fn validate_sample(
    line: &str,
    lineno: usize,
    families: &mut BTreeMap<String, FamilyCheck>,
) -> Result<(), String> {
    // Split `name{labels} value` / `name value`.
    let (name_part, value_part) = if let Some(open) = line.find('{') {
        let close = line
            .rfind('}')
            .ok_or_else(|| format!("line {lineno}: unclosed label braces"))?;
        if close < open {
            return Err(format!("line {lineno}: mismatched label braces"));
        }
        (&line[..open], line[close + 1..].trim())
    } else {
        line.split_once(' ')
            .map(|(n, v)| (n, v.trim()))
            .ok_or_else(|| format!("line {lineno}: sample has no value"))?
    };
    let name = name_part.trim();
    if !is_valid_metric_name(name) {
        return Err(format!("line {lineno}: invalid metric name {name:?}"));
    }
    let value: f64 = value_part
        .split_whitespace()
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("line {lineno}: non-numeric sample value {value_part:?}"))?;

    let family = family_of(name).to_owned();
    let check = families.entry(family.clone()).or_default();
    check.samples += 1;
    if check.kind.as_deref() != Some("histogram") {
        return Ok(());
    }
    if name.ends_with("_bucket") {
        let le = label_value(line, "le")
            .ok_or_else(|| format!("line {lineno}: histogram bucket without le label"))?;
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse()
                .map_err(|_| format!("line {lineno}: non-numeric le bound {le:?}"))?
        };
        if let Some((prev_bound, prev_cum)) = check.last_bucket {
            if bound <= prev_bound {
                return Err(format!(
                    "line {lineno}: {family} le bounds not increasing ({prev_bound} -> {bound})"
                ));
            }
            if value < prev_cum {
                return Err(format!(
                    "line {lineno}: {family} cumulative bucket decreased ({prev_cum} -> {value})"
                ));
            }
        }
        check.last_bucket = Some((bound, value));
        if bound.is_infinite() {
            check.inf_bucket = Some(value);
        }
    } else if name.ends_with("_count") {
        check.count = Some(value);
    }
    Ok(())
}

/// Extracts a label value (`key="value"`) from a sample line, if present.
fn label_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let open = line.find('{')?;
    let close = line.rfind('}')?;
    for pair in line[open + 1..close].split(',') {
        let (k, v) = pair.split_once('=')?;
        if k.trim() == key {
            return Some(v.trim().trim_matches('"'));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Counter, Telemetry, Timer};

    /// Deterministic LCG so the golden exposition is seed-pinned without
    /// any wall-clock input.
    fn pinned_snapshot() -> TelemetrySnapshot {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        let mut state = 0x5eed_2008_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        for counter in Counter::ALL {
            shard.add(counter, next() % 1_000);
        }
        for timer in Timer::ALL {
            for _ in 0..8 {
                shard.observe_ns(timer, next() % 2_000_000_000);
            }
        }
        telemetry.snapshot()
    }

    #[test]
    fn golden_exposition_is_stable_and_validates() {
        let text = render_telemetry(&pinned_snapshot());
        // Spot-pin the head of the exposition: the first counter family
        // with its seed-derived value. Any format drift (prefix, suffix,
        // comment shape, ordering) breaks this.
        let head: Vec<&str> = text.lines().take(3).collect();
        assert_eq!(
            head,
            vec![
                "# HELP redundancy_trials_scheduled_total Trials campaigns committed to run",
                "# TYPE redundancy_trials_scheduled_total counter",
                "redundancy_trials_scheduled_total 898",
            ]
        );
        // The whole document must parse and cover every family.
        let families = validate(&text).expect("rendered exposition validates");
        assert_eq!(families, Counter::COUNT + Timer::COUNT);
        // Histograms carry the full bucket ladder plus +Inf.
        assert!(text.contains("redundancy_trial_ns_bucket{le=\"1000\"}"));
        assert!(text.contains("redundancy_trial_ns_bucket{le=\"+Inf\"} 8"));
        assert!(text.contains("redundancy_trial_ns_count 8"));
        // Render twice: byte-identical (no hidden nondeterminism).
        assert_eq!(text, render_telemetry(&pinned_snapshot()));
    }

    #[test]
    fn empty_snapshot_still_renders_every_family() {
        let text = render_telemetry(&Telemetry::new().snapshot());
        let families = validate(&text).expect("empty exposition validates");
        assert_eq!(families, Counter::COUNT + Timer::COUNT);
        assert!(text.contains("redundancy_chaos_kills_total 0"));
        assert!(text.contains("redundancy_merger_stall_ns_count 0"));
        assert!(text.contains("redundancy_service_arrivals_total 0"));
        assert!(text.contains("redundancy_service_hedges_won_total 0"));
    }

    #[test]
    fn service_runtime_families_are_exported() {
        // The event-loop runtime's counters and histograms must all
        // reach the exposition, with the queue-depth family on its own
        // power-of-two ladder rather than the nanosecond one.
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        shard.add(Counter::ServiceArrivals, 12);
        shard.add(Counter::ServiceHedgesFired, 4);
        shard.add(Counter::ServiceHedgesWon, 1);
        shard.add(Counter::ServiceHedgesCancelled, 3);
        shard.add(Counter::ServiceConverterPassthrough, 2);
        shard.observe_ns(Timer::ServiceLatencyNs, 3_000_000);
        shard.observe_ns(Timer::ServiceQueueWaitNs, 40_000);
        shard.observe_ns(Timer::ServiceQueueDepth, 17);
        let text = render_telemetry(&telemetry.snapshot());
        validate(&text).expect("service exposition validates");
        assert!(text.contains("redundancy_service_arrivals_total 12"));
        assert!(text.contains("redundancy_service_hedges_fired_total 4"));
        assert!(text.contains("redundancy_service_hedges_won_total 1"));
        assert!(text.contains("redundancy_service_hedges_cancelled_total 3"));
        assert!(text.contains("redundancy_service_converter_passthrough_total 2"));
        assert!(text.contains("redundancy_service_latency_ns_bucket{le=\"4000000\"} 1"));
        assert!(text.contains("redundancy_service_queue_wait_ns_count 1"));
        // Depth ladder: 17 lands in the le="32" rung, and the family's
        // first rung is le="1" — impossible on NS_BUCKETS.
        assert!(text.contains("redundancy_service_queue_depth_bucket{le=\"1\"} 0"));
        assert!(text.contains("redundancy_service_queue_depth_bucket{le=\"32\"} 1"));
        assert!(text.contains("redundancy_service_queue_depth_count 1"));
    }

    #[test]
    fn shard_and_breaker_families_are_exported() {
        let telemetry = Telemetry::new();
        let shard = telemetry.register_shard();
        shard.add(Counter::ServiceShardRuns, 8);
        shard.add(Counter::ServiceBreakerOpens, 5);
        shard.add(Counter::ServiceBreakerHalfOpens, 4);
        shard.add(Counter::ServiceBreakerCloses, 3);
        shard.add(Counter::ServiceBreakerSkips, 40);
        shard.add(Counter::ServiceBreakerShed, 7);
        shard.add(Counter::ServiceAttemptsFailed, 21);
        shard.observe_ns(Timer::ServiceBreakerOpenNs, 5_000_000);
        let text = render_telemetry(&telemetry.snapshot());
        validate(&text).expect("breaker exposition validates");
        assert!(text.contains("redundancy_service_shard_runs_total 8"));
        assert!(text.contains("redundancy_service_breaker_opens_total 5"));
        assert!(text.contains("redundancy_service_breaker_half_opens_total 4"));
        assert!(text.contains("redundancy_service_breaker_closes_total 3"));
        assert!(text.contains("redundancy_service_breaker_skips_total 40"));
        assert!(text.contains("redundancy_service_breaker_shed_total 7"));
        assert!(text.contains("redundancy_service_attempts_failed_total 21"));
        // The open-duration histogram stays on the nanosecond ladder.
        assert!(text.contains("redundancy_service_breaker_open_ns_bucket{le=\"4000000\"} 0"));
        assert!(text.contains("redundancy_service_breaker_open_ns_bucket{le=\"16000000\"} 1"));
        assert!(text.contains("redundancy_service_breaker_open_ns_count 1"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        let cases = [
            ("redundancy_x nope", "non-numeric"),
            ("# WHAT redundancy_x counter", "neither"),
            ("# TYPE redundancy_x widget", "unknown metric type"),
            ("1bad_name 3", "invalid metric name"),
            ("redundancy_x{le=\"10\" 3", "unclosed label braces"),
        ];
        for (text, needle) in cases {
            let err = validate(text).expect_err(text);
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn validator_rejects_inconsistent_histograms() {
        let decreasing = "\
# TYPE h histogram
h_bucket{le=\"10\"} 5
h_bucket{le=\"20\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 5
";
        let err = validate(decreasing).unwrap_err();
        assert!(err.contains("cumulative bucket decreased"), "{err}");

        let count_mismatch = "\
# TYPE h histogram
h_bucket{le=\"10\"} 5
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 7
";
        let err = validate(count_mismatch).unwrap_err();
        assert!(err.contains("_count"), "{err}");

        let no_inf = "\
# TYPE h histogram
h_bucket{le=\"10\"} 5
h_sum 1
h_count 5
";
        let err = validate(no_inf).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }
}
