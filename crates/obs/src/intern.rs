//! Process-global string interning for trace events.
//!
//! The traced hot path emits millions of events per campaign, and the
//! dynamic labels they used to carry (`String` component names, provider
//! ids, rewrite-rule names, divergence details) made every such event a
//! heap allocation — plus another per clone as events moved through
//! fan-outs, ring buffers and shard merges. Interning replaces each owned
//! string with a [`Symbol`]: a `u32` index into a process-global,
//! append-only symbol table. Emitters intern once (at registration time,
//! or on the first occurrence of a label) and then copy four bytes per
//! event; exporters resolve the symbol back to the exact original string,
//! so serialized traces are byte-identical to what the owned-string
//! representation produced.
//!
//! # Design
//!
//! - **Interning** (`&str → Symbol`) takes a [`Mutex`] around a
//!   `HashMap<&'static str, u32>` and leaks each *distinct* string once.
//!   This is the cold path: the steady-state campaign loop only interns
//!   labels it has already seen, which is a lock + hash lookup and never
//!   allocates.
//! - **Resolving** (`Symbol → &'static str`) is lock-free: symbols index
//!   into fixed-size chunks published through `AtomicPtr`, and each slot
//!   stores its string as an atomic `(ptr, len)` pair. A resolve is two
//!   atomic loads and an index — no lock, no allocation, safe to call
//!   from every worker at once.
//! - **Identity**: interning the same string twice yields the same
//!   symbol, so `Symbol` equality is string equality and resolved
//!   references are pointer-equal for the life of the process.
//!
//! The leak is bounded by the label vocabulary, which is small and fixed
//! for campaign workloads (component names, provider ids, variant names,
//! re-expression labels are all decided at setup time). Free-form
//! `detail` strings are formatted from small domains; a workload that
//! interned unbounded unique strings would grow the table without bound,
//! which is the same contract the JSONL parser's label interner has
//! always had.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Entries per chunk of the symbol table.
const CHUNK_SIZE: usize = 1024;

/// Maximum number of chunks (bounds the table at ~1M distinct symbols —
/// far beyond any bounded label vocabulary; exceeding it panics rather
/// than silently recycling ids).
const MAX_CHUNKS: usize = 1024;

/// One slot of the resolve table: the leaked string's data pointer and
/// length, stored as separate atomics so readers never race the writer.
/// The writer stores `len` first and publishes with a release store of
/// `ptr`; a reader's acquire load of a non-null `ptr` therefore observes
/// the matching `len`.
struct Slot {
    ptr: AtomicPtr<u8>,
    len: AtomicUsize,
}

/// Lock-free-read side of the table: chunk `i` holds symbols
/// `i*CHUNK_SIZE ..`, published via a release store once allocated.
static CHUNKS: [AtomicPtr<Slot>; MAX_CHUNKS] =
    [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_CHUNKS];

/// Write side: deduplication map from interned string to symbol id.
static MAP: Mutex<Option<HashMap<&'static str, u32>>> = Mutex::new(None);

/// An interned string: a dense `u32` handle into the process-global
/// symbol table.
///
/// `Symbol` is [`Copy`], four bytes, and compares equal exactly when the
/// underlying strings are equal. Event payloads carry symbols instead of
/// owned strings, which makes [`Event`](crate::Event) plain-old-data:
/// cloning an event is a `memcpy` and recording one never allocates.
///
/// # Examples
///
/// ```
/// use redundancy_obs::Symbol;
///
/// let a = Symbol::intern("cache");
/// let b = Symbol::intern("cache");
/// assert_eq!(a, b);
/// assert_eq!(a.resolve(), "cache");
/// // Resolved references are stable for the life of the process.
/// assert!(std::ptr::eq(a.resolve(), b.resolve()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `s`, returning its stable symbol. The first occurrence of
    /// a distinct string leaks one copy; later calls are a lock + hash
    /// lookup with no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the table exceeds `MAX_CHUNKS * CHUNK_SIZE` distinct
    /// symbols (a leak guard, not a realistic limit).
    #[must_use]
    pub fn intern(s: &str) -> Symbol {
        let mut guard = MAP.lock().expect("symbol interner lock never poisoned");
        let map = guard.get_or_insert_with(HashMap::new);
        if let Some(&id) = map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(map.len()).expect("symbol table exceeds u32 ids");
        let (chunk_idx, slot_idx) = (id as usize / CHUNK_SIZE, id as usize % CHUNK_SIZE);
        assert!(
            chunk_idx < MAX_CHUNKS,
            "symbol table exceeded {} entries — interning an unbounded vocabulary?",
            MAX_CHUNKS * CHUNK_SIZE
        );
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut chunk = CHUNKS[chunk_idx].load(Ordering::Acquire);
        if chunk.is_null() {
            let fresh: Box<[Slot]> = (0..CHUNK_SIZE)
                .map(|_| Slot {
                    ptr: AtomicPtr::new(std::ptr::null_mut()),
                    len: AtomicUsize::new(0),
                })
                .collect();
            chunk = Box::leak(fresh).as_mut_ptr();
            CHUNKS[chunk_idx].store(chunk, Ordering::Release);
        }
        // Publish the slot: len first, then ptr with release, so any
        // reader that acquires a non-null ptr sees the matching len.
        // SAFETY: `chunk` points at CHUNK_SIZE leaked slots and
        // `slot_idx < CHUNK_SIZE`; slots are written exactly once (the
        // map holds the lock and `id` is fresh).
        let slot = unsafe { &*chunk.add(slot_idx) };
        slot.len.store(leaked.len(), Ordering::Relaxed);
        slot.ptr
            .store(leaked.as_ptr().cast_mut(), Ordering::Release);
        map.insert(leaked, id);
        Symbol(id)
    }

    /// Resolves the symbol to its interned string: two atomic loads and
    /// an index, no lock taken.
    ///
    /// # Panics
    ///
    /// Panics if the symbol did not come from [`intern`](Self::intern)
    /// in this process (e.g. a raw id fabricated out of thin air).
    #[must_use]
    pub fn resolve(self) -> &'static str {
        let idx = self.0 as usize;
        let chunk = CHUNKS[idx / CHUNK_SIZE].load(Ordering::Acquire);
        assert!(!chunk.is_null(), "symbol {} was never interned", self.0);
        // SAFETY: non-null chunks point at CHUNK_SIZE leaked slots.
        let slot = unsafe { &*chunk.add(idx % CHUNK_SIZE) };
        let ptr = slot.ptr.load(Ordering::Acquire);
        assert!(!ptr.is_null(), "symbol {} was never interned", self.0);
        let len = slot.len.load(Ordering::Relaxed);
        // SAFETY: (ptr, len) were published together from a leaked,
        // immutable `&'static str`.
        unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) }
    }

    /// The raw table index, for diagnostics.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.resolve() == *other
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.resolve() == other
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.resolve())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.resolve())
    }
}

/// Free-function alias for [`Symbol::intern`], for call sites that read
/// better without the type name.
#[must_use]
pub fn intern(s: &str) -> Symbol {
    Symbol::intern(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a = Symbol::intern("alpha-test-label");
        let b = Symbol::intern("alpha-test-label");
        assert_eq!(a, b);
        assert_eq!(a.as_u32(), b.as_u32());
        let c = Symbol::intern("beta-test-label");
        assert_ne!(a, c);
    }

    #[test]
    fn resolve_round_trips_exactly() {
        for s in ["", "x", "with \"quotes\" and \\ escapes", "unicode é λ 😀"] {
            let sym = Symbol::intern(s);
            assert_eq!(sym.resolve(), s);
        }
    }

    #[test]
    fn resolved_references_are_stable() {
        let a = Symbol::intern("stable-ref-label").resolve();
        let b = Symbol::intern("stable-ref-label").resolve();
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn resolve_is_safe_under_concurrent_interning() {
        use std::sync::Barrier;
        let threads = 8;
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..200 {
                        // Half the labels collide across threads, half are
                        // thread-unique, stressing both dedup and growth.
                        let shared = format!("concurrent-shared-{}", i % 50);
                        let unique = format!("concurrent-unique-{t}-{i}");
                        assert_eq!(Symbol::intern(&shared).resolve(), shared);
                        assert_eq!(Symbol::intern(&unique).resolve(), unique);
                    }
                });
            }
        });
    }

    #[test]
    fn comparisons_and_display() {
        let sym = Symbol::intern("display-me");
        assert_eq!(sym, "display-me");
        assert_eq!(sym.to_string(), "display-me");
        assert_eq!(format!("{sym:?}"), "Symbol(\"display-me\")");
        let via_into: Symbol = "display-me".into();
        assert_eq!(via_into, sym);
    }
}
