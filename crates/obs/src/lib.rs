//! # redundancy-obs — structured tracing, metrics and trial forensics
//!
//! Observability for the redundancy framework: every layer of the stack
//! (the core pattern engines, the 17 technique modules, the Monte-Carlo
//! simulator) emits structured [`Event`]s describing what happened —
//! variant executions and their failures, adjudicator verdicts and
//! rejection reasons, fuel consumption, checkpoints and rollbacks,
//! rejuvenations, reboots, service rebinds, GP generations — and this
//! crate provides the places those events go.
//!
//! ## Design
//!
//! - **Zero cost when disabled.** Instrumented code holds an
//!   `Option<ObsHandle>`; with no handle attached the per-event cost is
//!   one branch. Attaching a disabled observer (the default
//!   [`NoopObserver`] reports `enabled() == false`) short-circuits the
//!   same way: event payloads are built inside closures that only run
//!   when a consuming observer is attached.
//! - **Dependency-free base crate.** This crate sits *below*
//!   `redundancy-core` in the workspace graph so every layer can emit.
//!   Domain enums are carried as `&'static str` labels
//!   (`VariantFailure::kind()`, `RejectionReason::kind()`).
//! - **Bounded capture.** [`RingBufferObserver`] keeps the most recent N
//!   events and counts what it dropped; exporters tolerate truncation.
//! - **Sharded capture.** Parallel campaigns record each trial into its
//!   own [`CollectorObserver`] shard; [`merge_shards`] stitches the
//!   shards back together in trial order, renumbering span ids so the
//!   merged stream is bit-for-bit identical to a serial recording.
//! - **Lock-free telemetry.** The [`telemetry`] module keeps per-thread
//!   shards of relaxed atomic counters and latency histograms, gated on
//!   one process-wide flag and aggregated only on demand — the data
//!   plane of the simulator's campaign flight recorder. [`prometheus`]
//!   renders snapshots in Prometheus text exposition format (and
//!   validates them back).
//!
//! ## Worked example
//!
//! ```
//! use std::sync::Arc;
//! use redundancy_obs::{
//!     CostSnapshot, ObsHandle, Point, RingBufferObserver, SpanKind, SpanStatus, TraceSummary,
//! };
//!
//! let ring = RingBufferObserver::shared(1024);
//! let mut obs = ObsHandle::new(ring.clone());
//!
//! let technique = obs.begin_span(0, || SpanKind::Technique { name: "n-version" });
//! obs.emit(30, || Point::Verdict {
//!     accepted: true,
//!     support: 2,
//!     dissent: 1,
//!     rejection: None,
//! });
//! obs.end_span(
//!     technique,
//!     30,
//!     SpanStatus::Accepted { support: 2, dissent: 1 },
//!     CostSnapshot { virtual_ns: 30, work_units: 9, invocations: 3, design_cost: 3.0 },
//! );
//!
//! let summary = TraceSummary::from_events(&ring.events());
//! assert_eq!(summary.accepted, 1);
//! assert_eq!(summary.total_cost.virtual_ns, 30);
//! ```

#![warn(missing_docs)]

mod event;
mod export;
pub mod intern;
mod metrics;
mod observer;
pub mod prometheus;
mod shard;
pub mod telemetry;

pub use event::{CostSnapshot, Event, EventKind, Point, SpanId, SpanKind, SpanStatus, ROOT_SPAN};
#[cfg(feature = "serde")]
pub use export::{event_from_json, event_to_json, from_jsonl, to_jsonl, ParseError};
pub use export::{render_span_tree, summary, TraceSummary};
pub use intern::Symbol;
pub use metrics::{
    Histogram, MetricKey, MetricsObserver, MetricsRegistry, FUEL_BUCKETS, TICK_BUCKETS,
};
pub use observer::{
    FanoutObserver, NoopObserver, ObsHandle, Observer, RingBufferObserver, SpanToken,
};
pub use shard::{
    forward_renumbered, forward_renumbered_drain, merge_shards, renumber_in_place,
    with_worker_arena, with_worker_shard, CollectorObserver, ShardPool, StreamingMerger,
    WorkerArena,
};
pub use telemetry::{Telemetry, TelemetryShard, TelemetrySnapshot};
