//! Metrics: labeled counters and fixed-bucket histograms.
//!
//! The [`MetricsRegistry`] aggregates what the event stream reports into
//! queryable numbers: how many technique runs were accepted per technique,
//! how recovery latency (in SimClock ticks) distributes, how much fuel
//! hung executions burned, how often each point event fired. Attach a
//! [`MetricsObserver`] anywhere an [`Observer`] is accepted and the
//! registry fills itself; or drive a registry directly from code.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::event::{Event, EventKind, Point, SpanKind, SpanStatus};
use crate::observer::Observer;

/// Fixed upper bucket bounds for virtual-time (SimClock tick) histograms.
pub const TICK_BUCKETS: &[u64] = &[
    10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000,
];

/// Fixed upper bucket bounds for fuel (work-unit) histograms.
pub const FUEL_BUCKETS: &[u64] = &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536];

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `v` with `v <= bounds[i]` (and greater than
/// the previous bound); samples above the last bound land in the overflow
/// bucket. Bounds must be strictly increasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given upper bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded samples, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            #[allow(clippy::cast_precision_loss)]
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The upper bucket bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, aligned with [`bounds`](Self::bounds).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples above the last bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Reassembles a histogram from externally accumulated parts (the
    /// telemetry shards aggregate in relaxed atomics and only build a
    /// `Histogram` at snapshot time). `counts` must align with `bounds`;
    /// the total count is derived, and `min`/`max` are normalised to the
    /// empty-histogram sentinels when no samples were recorded.
    pub(crate) fn from_parts(
        bounds: &[u64],
        counts: Vec<u64>,
        overflow: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        assert_eq!(
            bounds.len(),
            counts.len(),
            "histogram parts must align with bounds"
        );
        let count = counts.iter().sum::<u64>() + overflow;
        Histogram {
            bounds: bounds.to_vec(),
            counts,
            overflow,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max: if count == 0 { 0 } else { max },
        }
    }

    /// Approximate quantile (0.0..=1.0) from bucket upper bounds: returns
    /// the upper bound of the bucket containing the `q`-quantile sample
    /// (or the observed max for the overflow bucket). `None` if empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds[i]);
            }
        }
        Some(self.max)
    }
}

/// A metric identity: a static metric name plus a free-form label (the
/// technique name, fault-class, rejection reason, ...).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric family name (e.g. `"technique_runs"`).
    pub name: &'static str,
    /// Label value; empty for unlabeled metrics.
    pub label: String,
}

impl MetricKey {
    fn new(name: &'static str, label: impl Into<String>) -> Self {
        MetricKey {
            name,
            label: label.into(),
        }
    }

    /// Renders as `name{label}` (or bare `name` when unlabeled).
    #[must_use]
    pub fn render(&self) -> String {
        if self.label.is_empty() {
            self.name.to_owned()
        } else {
            format!("{}{{{}}}", self.name, self.label)
        }
    }
}

/// Thread-safe registry of labeled counters and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, u64>>,
    histograms: Mutex<BTreeMap<MetricKey, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: a new registry behind an `Arc`.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Adds `delta` to the counter `name{label}`.
    pub fn add(&self, name: &'static str, label: &str, delta: u64) {
        *self
            .lock_counters()
            .entry(MetricKey::new(name, label))
            .or_insert(0) += delta;
    }

    /// Increments the counter `name{label}` by one.
    pub fn inc(&self, name: &'static str, label: &str) {
        self.add(name, label, 1);
    }

    /// Records `value` into the histogram `name{label}`, creating it with
    /// the given bucket bounds on first use.
    pub fn observe(&self, name: &'static str, label: &str, bounds: &[u64], value: u64) {
        self.lock_histograms()
            .entry(MetricKey::new(name, label))
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Reads a counter (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &'static str, label: &str) -> u64 {
        self.lock_counters()
            .get(&MetricKey::new(name, label))
            .copied()
            .unwrap_or(0)
    }

    /// Reads a histogram snapshot, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &'static str, label: &str) -> Option<Histogram> {
        self.lock_histograms()
            .get(&MetricKey::new(name, label))
            .cloned()
    }

    /// All counters, sorted by key.
    #[must_use]
    pub fn counters(&self) -> Vec<(MetricKey, u64)> {
        self.lock_counters()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// All histograms, sorted by key.
    #[must_use]
    pub fn histograms(&self) -> Vec<(MetricKey, Histogram)> {
        self.lock_histograms()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders every metric as aligned text, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.counters() {
            let _ = writeln!(out, "{:<56} {value}", key.render());
        }
        for (key, hist) in self.histograms() {
            let mean = hist.mean().unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{:<56} count={} mean={:.1} min={} max={} p95<={}",
                key.render(),
                hist.count(),
                mean,
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0),
                hist.quantile(0.95).unwrap_or(0),
            );
        }
        out
    }

    fn lock_counters(&self) -> MutexGuard<'_, BTreeMap<MetricKey, u64>> {
        self.counters
            .lock()
            .expect("metrics counter lock is never poisoned")
    }

    fn lock_histograms(&self) -> MutexGuard<'_, BTreeMap<MetricKey, Histogram>> {
        self.histograms
            .lock()
            .expect("metrics histogram lock is never poisoned")
    }
}

/// An [`Observer`] that folds the event stream into a [`MetricsRegistry`].
///
/// Technique spans drive the headline metrics: every `SpanEnd` of a
/// technique span counts into `technique_runs` plus one of
/// `technique_accepted` / `technique_rejected` / `technique_failed`, and
/// its virtual-time delta lands in the `technique_ticks` histogram. An
/// acceptance with dissent (some variants failed or disagreed but the
/// adjudicator still produced an output) is a *recovery*: it counts into
/// `recoveries` and its latency into `recovery_latency_ticks`.
///
/// To label metrics per fault class or scenario, give each scenario its
/// own `MetricsObserver` via [`with_scope`](Self::with_scope): the scope
/// is appended to every label as `label/scope`.
pub struct MetricsObserver {
    registry: Arc<MetricsRegistry>,
    scope: String,
    /// Open spans this observer has seen (span id -> technique/variant
    /// label), so `SpanEnd` events can be attributed.
    open: Mutex<BTreeMap<u64, OpenSpan>>,
}

#[derive(Debug, Clone)]
enum OpenSpan {
    Technique(&'static str),
    Variant(crate::intern::Symbol),
    Trial,
    Other,
}

impl MetricsObserver {
    /// Creates an observer feeding `registry`, with no scope suffix.
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        MetricsObserver {
            registry,
            scope: String::new(),
            open: Mutex::new(BTreeMap::new()),
        }
    }

    /// Appends `/scope` to every label this observer writes (e.g. the
    /// fault-class being simulated), so one registry can hold per-scenario
    /// breakdowns.
    #[must_use]
    pub fn with_scope(mut self, scope: impl Into<String>) -> Self {
        self.scope = scope.into();
        self
    }

    /// The registry this observer feeds.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn label(&self, base: &str) -> String {
        if self.scope.is_empty() {
            base.to_owned()
        } else if base.is_empty() {
            self.scope.clone()
        } else {
            format!("{base}/{}", self.scope)
        }
    }

    fn lock_open(&self) -> MutexGuard<'_, BTreeMap<u64, OpenSpan>> {
        self.open
            .lock()
            .expect("metrics open-span lock is never poisoned")
    }
}

impl Observer for MetricsObserver {
    fn record(&self, event: Event) {
        let reg = &self.registry;
        match event.kind {
            EventKind::SpanStart { kind } => {
                let open = match kind {
                    SpanKind::Technique { name } => OpenSpan::Technique(name),
                    SpanKind::Variant { name } => OpenSpan::Variant(name),
                    SpanKind::Trial { .. } => OpenSpan::Trial,
                    SpanKind::Pattern { .. } | SpanKind::Scope { .. } => OpenSpan::Other,
                };
                self.lock_open().insert(event.span, open);
            }
            EventKind::SpanEnd { status, cost } => {
                let open = self.lock_open().remove(&event.span);
                match open {
                    Some(OpenSpan::Technique(name)) => {
                        let label = self.label(name);
                        reg.inc("technique_runs", &label);
                        reg.observe("technique_ticks", &label, TICK_BUCKETS, cost.virtual_ns);
                        match status {
                            SpanStatus::Accepted { dissent, .. } => {
                                reg.inc("technique_accepted", &label);
                                if dissent > 0 {
                                    reg.inc("recoveries", &label);
                                    reg.observe(
                                        "recovery_latency_ticks",
                                        &label,
                                        TICK_BUCKETS,
                                        cost.virtual_ns,
                                    );
                                }
                            }
                            SpanStatus::Rejected { reason } => {
                                reg.inc("technique_rejected", &label);
                                reg.inc("rejections", &self.label(reason));
                            }
                            SpanStatus::Failed { kind } => {
                                reg.inc("technique_failed", &label);
                                reg.inc("failures", &self.label(kind));
                            }
                            SpanStatus::Ok | SpanStatus::Trial { .. } => {
                                reg.inc("technique_accepted", &label);
                            }
                        }
                    }
                    Some(OpenSpan::Variant(name)) => {
                        match status {
                            SpanStatus::Failed { kind } => {
                                reg.inc("variant_failures", &self.label(kind));
                                let _ = name;
                            }
                            _ => reg.inc("variant_ok", &self.label("")),
                        }
                        reg.observe(
                            "variant_ticks",
                            &self.label(""),
                            TICK_BUCKETS,
                            cost.virtual_ns,
                        );
                    }
                    Some(OpenSpan::Trial) => {
                        if let SpanStatus::Trial { disposition } = status {
                            reg.inc("trials", &self.label(disposition));
                        }
                        reg.observe(
                            "trial_ticks",
                            &self.label(""),
                            TICK_BUCKETS,
                            cost.virtual_ns,
                        );
                    }
                    Some(OpenSpan::Other) | None => {}
                }
            }
            EventKind::Point(point) => {
                match &point {
                    Point::Verdict {
                        accepted,
                        rejection,
                        ..
                    } => {
                        if *accepted {
                            reg.inc("verdicts", &self.label("accepted"));
                        } else {
                            reg.inc("verdicts", &self.label("rejected"));
                            if let Some(reason) = rejection {
                                reg.inc("rejections", &self.label(reason));
                            }
                        }
                    }
                    Point::FuelExhausted { consumed } => {
                        reg.observe("fuel_exhausted", &self.label(""), FUEL_BUCKETS, *consumed);
                    }
                    _ => {}
                }
                reg.inc("points", &self.label(point.name()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CostSnapshot;

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        h.record(0); // first bucket
        h.record(10); // first bucket (<= bound)
        h.record(11); // second bucket
        h.record(100); // second bucket
        h.record(101); // third bucket
        h.record(1000); // third bucket
        h.record(1001); // overflow
        assert_eq!(h.bucket_counts(), &[2, 2, 2]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1001));
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = Histogram::new(&[10, 100]);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [5, 5, 5, 50] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(16.25));
        assert_eq!(h.quantile(0.5), Some(10), "median is in the first bucket");
        assert_eq!(h.quantile(1.0), Some(100));
        h.record(10_000);
        assert_eq!(
            h.quantile(1.0),
            Some(10_000),
            "overflow reports observed max"
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn empty_histogram_answers_every_query_without_panicking() {
        let h = Histogram::new(TICK_BUCKETS);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn single_sample_histogram_pins_every_quantile_to_its_bucket() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(42.0));
        assert_eq!((h.min(), h.max()), (Some(42), Some(42)));
        // Every quantile of a one-sample histogram is that sample's
        // bucket upper bound — including q=0.0, whose rank clamps to 1.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(100));
        }
    }

    #[test]
    fn overflow_only_histogram_reports_observed_max_for_all_quantiles() {
        let mut h = Histogram::new(&[10]);
        h.record(5_000);
        h.record(70_000);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bucket_counts(), &[0]);
        // No finite bucket reaches any rank, so quantiles fall through
        // to the observed max rather than inventing a bound.
        assert_eq!(h.quantile(0.5), Some(70_000));
        assert_eq!(h.quantile(1.0), Some(70_000));
        // Out-of-range q is clamped, not propagated.
        assert_eq!(h.quantile(7.5), Some(70_000));
        assert_eq!(h.quantile(-1.0), Some(70_000));
    }

    #[test]
    fn registry_render_handles_empty_and_overflow_histograms() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.render(), "", "empty registry renders nothing");
        reg.observe("lag", "ck", &[10], 99); // overflow-bucket-only
        let rendered = reg.render();
        assert!(rendered.contains("lag{ck}"));
        assert!(rendered.contains("count=1"));
        assert!(
            rendered.contains("p95<=99"),
            "p95 uses observed max: {rendered}"
        );
    }

    #[test]
    fn from_parts_round_trips_a_recorded_histogram() {
        let mut recorded = Histogram::new(&[10, 100]);
        for v in [1, 50, 5_000] {
            recorded.record(v);
        }
        let rebuilt = Histogram::from_parts(&[10, 100], vec![1, 1], 1, 5_051, 1, 5_000);
        assert_eq!(rebuilt, recorded);
        // Empty parts normalise min/max to the empty sentinels.
        let empty = Histogram::from_parts(&[10, 100], vec![0, 0], 0, 0, u64::MAX, 0);
        assert_eq!(empty, Histogram::new(&[10, 100]));
    }

    #[test]
    fn registry_counters_and_render() {
        let reg = MetricsRegistry::new();
        reg.inc("runs", "nvp");
        reg.inc("runs", "nvp");
        reg.add("runs", "rb", 5);
        assert_eq!(reg.counter("runs", "nvp"), 2);
        assert_eq!(reg.counter("runs", "rb"), 5);
        assert_eq!(reg.counter("runs", "missing"), 0);
        reg.observe("lat", "nvp", TICK_BUCKETS, 42);
        let rendered = reg.render();
        assert!(rendered.contains("runs{nvp}"));
        assert!(rendered.contains("lat{nvp}"));
        assert!(rendered.contains("count=1"));
    }

    #[test]
    fn metrics_observer_counts_recoveries() {
        let reg = MetricsRegistry::shared();
        let obs = MetricsObserver::new(Arc::clone(&reg));
        // Technique span that accepts with dissent -> one recovery.
        obs.record(Event {
            seq: 0,
            span: 1,
            parent: 0,
            clock: 0,
            kind: EventKind::SpanStart {
                kind: SpanKind::Technique { name: "nvp" },
            },
        });
        obs.record(Event {
            seq: 1,
            span: 1,
            parent: 0,
            clock: 30,
            kind: EventKind::SpanEnd {
                status: SpanStatus::Accepted {
                    support: 2,
                    dissent: 1,
                },
                cost: CostSnapshot {
                    virtual_ns: 30,
                    ..CostSnapshot::ZERO
                },
            },
        });
        assert_eq!(reg.counter("technique_runs", "nvp"), 1);
        assert_eq!(reg.counter("technique_accepted", "nvp"), 1);
        assert_eq!(reg.counter("recoveries", "nvp"), 1);
        let lat = reg.histogram("recovery_latency_ticks", "nvp").unwrap();
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.sum(), 30);
    }

    #[test]
    fn metrics_observer_scope_suffixes_labels() {
        let reg = MetricsRegistry::shared();
        let obs = MetricsObserver::new(Arc::clone(&reg)).with_scope("crash-fault");
        obs.record(Event {
            seq: 0,
            span: 1,
            parent: 0,
            clock: 0,
            kind: EventKind::SpanStart {
                kind: SpanKind::Technique { name: "rb" },
            },
        });
        obs.record(Event {
            seq: 1,
            span: 1,
            parent: 0,
            clock: 9,
            kind: EventKind::SpanEnd {
                status: SpanStatus::Rejected {
                    reason: "no_quorum",
                },
                cost: CostSnapshot::ZERO,
            },
        });
        assert_eq!(reg.counter("technique_runs", "rb/crash-fault"), 1);
        assert_eq!(reg.counter("rejections", "no_quorum/crash-fault"), 1);
    }
}
