//! Observers: where emitted events go.
//!
//! The [`Observer`] trait is the single sink interface. Instrumented code
//! never calls it directly — it goes through [`ObsHandle`], which carries
//! the observer, the span-id allocator and the current span, and is cheap
//! to clone into forked execution contexts. When no handle is attached
//! (the default) instrumentation is a single `Option` test; when a
//! disabled observer (e.g. [`NoopObserver`]) is attached, the cached
//! `enabled` flag still short-circuits event construction. Either way the
//! hot path never allocates.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{
    CostSnapshot, Event, EventKind, Point, SpanId, SpanKind, SpanStatus, ROOT_SPAN,
};

/// A sink for [`Event`]s.
///
/// Implementations must be thread-safe: the `Threaded` execution mode
/// records from several variant threads at once.
pub trait Observer: Send + Sync {
    /// Whether this observer wants events at all. Instrumentation caches
    /// this at attach time and skips event construction when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. The observer assigns the event's global `seq`.
    fn record(&self, event: Event);
}

/// The default observer: discards everything and reports itself disabled,
/// so instrumentation never even constructs events.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// Bounded in-memory capture: keeps the most recent `capacity` events,
/// dropping the oldest on overflow (and counting the drops).
///
/// # Examples
///
/// ```
/// use redundancy_obs::{Event, EventKind, Observer, Point, RingBufferObserver};
///
/// let ring = RingBufferObserver::new(2);
/// for i in 0..3 {
///     ring.record(Event {
///         seq: 0,
///         span: 0,
///         parent: 0,
///         clock: i,
///         kind: EventKind::Point(Point::Custom {
///             name: "tick",
///             detail: "".into(),
///         }),
///     });
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// let events = ring.events();
/// assert_eq!(events[0].seq, 1); // seq 0 was evicted
/// ```
pub struct RingBufferObserver {
    seq: AtomicU64,
    capacity: usize,
    inner: Mutex<Ring>,
}

struct Ring {
    buf: VecDeque<Event>,
    dropped: u64,
}

impl RingBufferObserver {
    /// Creates a ring buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferObserver {
            seq: AtomicU64::new(0),
            capacity,
            inner: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Convenience: a new ring behind an `Arc`, ready to attach.
    #[must_use]
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().buf.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Copies the retained events out, oldest first.
    ///
    /// The output vector is allocated *before* the lock is taken and the
    /// buffer never exceeds `capacity`, so the critical section is two
    /// bulk memcpys — recording threads are not stalled behind an
    /// element-by-element clone.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.capacity);
        let inner = self.lock();
        let (front, back) = inner.buf.as_slices();
        out.extend_from_slice(front);
        out.extend_from_slice(back);
        out
    }

    /// Takes the retained events out, leaving the buffer empty (the drop
    /// counter and sequence numbering continue).
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        self.lock().buf.drain(..).collect()
    }

    /// Clears the buffer and the drop counter.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.buf.clear();
        inner.dropped = 0;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.inner
            .lock()
            .expect("ring buffer lock is never poisoned")
    }
}

impl Observer for RingBufferObserver {
    fn record(&self, mut event: Event) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
    }
}

/// Broadcasts every event to several sinks (e.g. a [`MetricsObserver`]
/// aggregating and a [`RingBufferObserver`] capturing the raw stream).
///
/// Enabled iff any sink is enabled; disabled sinks are skipped per event.
///
/// [`MetricsObserver`]: crate::metrics::MetricsObserver
pub struct FanoutObserver {
    sinks: Vec<Arc<dyn Observer>>,
}

impl FanoutObserver {
    /// Wraps the given sinks.
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn Observer>>) -> Self {
        FanoutObserver { sinks }
    }
}

impl Observer for FanoutObserver {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, event: Event) {
        // Hand the incoming event itself to the final enabled sink
        // instead of copying for every sink including the last.
        let mut enabled = self.sinks.iter().filter(|s| s.enabled());
        let Some(mut current) = enabled.next() else {
            return;
        };
        for next in enabled {
            current.record(event);
            current = next;
        }
        current.record(event);
    }
}

/// The instrumentation handle carried by execution contexts: an observer,
/// the shared span-id allocator, and the current span.
///
/// Cloning (for forked contexts) shares the allocator and observer; the
/// clone inherits the current span, so spans opened by a child are
/// parented under the span the parent was in at fork time.
#[derive(Clone)]
pub struct ObsHandle {
    observer: Arc<dyn Observer>,
    ids: Arc<AtomicU64>,
    current: SpanId,
    enabled: bool,
}

/// Token returned by [`ObsHandle::begin_span`]; hand it back to
/// [`ObsHandle::end_span`]. Carries the previous span to restore.
#[derive(Debug, Clone, Copy)]
#[must_use = "end_span must be called with this token"]
pub struct SpanToken {
    span: SpanId,
    previous: SpanId,
}

impl ObsHandle {
    /// Wraps an observer, caching its `enabled` flag. Span ids start at 1.
    #[must_use]
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        let enabled = observer.enabled();
        ObsHandle {
            observer,
            ids: Arc::new(AtomicU64::new(1)),
            current: ROOT_SPAN,
            enabled,
        }
    }

    /// Wraps an observer reusing a caller-pooled span-id allocator. The
    /// counter is reset to 1, so span numbering matches a fresh handle,
    /// but the `Arc` itself is recycled — per-trial handle construction
    /// on the traced campaign path stays allocation-free.
    ///
    /// The caller must not share `ids` with a handle that is still live:
    /// the reset would make span ids collide.
    #[must_use]
    pub fn with_id_allocator(observer: Arc<dyn Observer>, ids: Arc<AtomicU64>) -> Self {
        let enabled = observer.enabled();
        ids.store(1, Ordering::Relaxed);
        ObsHandle {
            observer,
            ids,
            current: ROOT_SPAN,
            enabled,
        }
    }

    /// Whether events are being consumed (cached at attach time).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The observer this handle feeds.
    #[must_use]
    pub fn observer(&self) -> &Arc<dyn Observer> {
        &self.observer
    }

    /// The span new events are attributed to.
    #[must_use]
    pub fn current_span(&self) -> SpanId {
        self.current
    }

    /// Opens a span; `kind` is only evaluated when enabled.
    pub fn begin_span(&mut self, clock: u64, kind: impl FnOnce() -> SpanKind) -> SpanToken {
        if !self.enabled {
            return SpanToken {
                span: ROOT_SPAN,
                previous: ROOT_SPAN,
            };
        }
        let span = self.ids.fetch_add(1, Ordering::Relaxed);
        let token = SpanToken {
            span,
            previous: self.current,
        };
        self.observer.record(Event {
            seq: 0,
            span,
            parent: self.current,
            clock,
            kind: EventKind::SpanStart { kind: kind() },
        });
        self.current = span;
        token
    }

    /// Closes a span opened by [`begin_span`](Self::begin_span), restoring
    /// the previous current span.
    pub fn end_span(
        &mut self,
        token: SpanToken,
        clock: u64,
        status: SpanStatus,
        cost: CostSnapshot,
    ) {
        if !self.enabled {
            return;
        }
        self.observer.record(Event {
            seq: 0,
            span: token.span,
            parent: token.previous,
            clock,
            kind: EventKind::SpanEnd { status, cost },
        });
        self.current = token.previous;
    }

    /// Emits a point event in the current span; `point` is only evaluated
    /// when enabled.
    pub fn emit(&self, clock: u64, point: impl FnOnce() -> Point) {
        if !self.enabled {
            return;
        }
        self.observer.record(Event {
            seq: 0,
            span: self.current,
            parent: self.current,
            clock,
            kind: EventKind::Point(point()),
        });
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("current", &self.current)
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(clock: u64) -> Event {
        Event {
            seq: 0,
            span: 0,
            parent: 0,
            clock,
            kind: EventKind::Point(Point::Custom {
                name: "tick",
                detail: "".into(),
            }),
        }
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let ring = RingBufferObserver::new(3);
        for i in 0..10 {
            ring.record(tick(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.dropped(), 7);
        let events = ring.events();
        // The three newest survive, in order, with continuous seq.
        assert_eq!(
            events.iter().map(|e| e.clock).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn ring_buffer_exactly_at_capacity_does_not_drop() {
        let ring = RingBufferObserver::new(4);
        for i in 0..4 {
            ring.record(tick(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0);
        assert!(!ring.is_empty());
    }

    #[test]
    fn ring_buffer_take_and_clear() {
        let ring = RingBufferObserver::new(2);
        for i in 0..3 {
            ring.record(tick(i));
        }
        let taken = ring.take();
        assert_eq!(taken.len(), 2);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1, "take keeps the drop counter");
        ring.record(tick(9));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0, "clear resets the drop counter");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = RingBufferObserver::new(0);
    }

    #[test]
    fn span_nesting_restores_parent() {
        let ring = RingBufferObserver::shared(64);
        let mut handle = ObsHandle::new(ring.clone());
        let outer = handle.begin_span(0, || SpanKind::Scope { name: "outer" });
        assert_eq!(handle.current_span(), 1);
        let inner = handle.begin_span(1, || SpanKind::Scope { name: "inner" });
        assert_eq!(handle.current_span(), 2);
        handle.emit(2, || Point::Custom {
            name: "inside",
            detail: "".into(),
        });
        handle.end_span(inner, 3, SpanStatus::Ok, CostSnapshot::ZERO);
        assert_eq!(handle.current_span(), 1);
        handle.end_span(outer, 4, SpanStatus::Ok, CostSnapshot::ZERO);
        assert_eq!(handle.current_span(), ROOT_SPAN);

        let events = ring.events();
        assert_eq!(events.len(), 5);
        // The point is attributed to the inner span; parents chain up.
        assert_eq!(events[2].span, 2);
        assert!(matches!(events[1].kind, EventKind::SpanStart { .. }));
        assert_eq!(events[1].parent, 1);
        assert_eq!(events[0].parent, ROOT_SPAN);
    }

    #[test]
    fn forked_handles_share_allocator_and_parent() {
        let ring = RingBufferObserver::shared(64);
        let mut parent = ObsHandle::new(ring.clone());
        let outer = parent.begin_span(0, || SpanKind::Scope { name: "outer" });
        let mut child = parent.clone();
        let child_span = child.begin_span(0, || SpanKind::Scope { name: "child" });
        child.end_span(child_span, 1, SpanStatus::Ok, CostSnapshot::ZERO);
        parent.end_span(outer, 2, SpanStatus::Ok, CostSnapshot::ZERO);
        let events = ring.events();
        // Child span got a fresh id (2) and is parented under outer (1).
        assert_eq!(events[1].span, 2);
        assert_eq!(events[1].parent, 1);
    }

    #[test]
    fn fanout_broadcasts_to_enabled_sinks() {
        let a = RingBufferObserver::shared(8);
        let b = RingBufferObserver::shared(8);
        let fan = FanoutObserver::new(vec![
            a.clone() as Arc<dyn Observer>,
            Arc::new(NoopObserver),
            b.clone() as Arc<dyn Observer>,
        ]);
        assert!(fan.enabled());
        let mut handle = ObsHandle::new(Arc::new(fan));
        let span = handle.begin_span(0, || SpanKind::Scope { name: "s" });
        handle.end_span(span, 1, SpanStatus::Ok, CostSnapshot::ZERO);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert!(!FanoutObserver::new(vec![Arc::new(NoopObserver)]).enabled());
    }

    #[test]
    fn fanout_two_sinks_both_receive_every_event() {
        // Regression for the last-sink copy: with exactly two sinks, the
        // second (final) sink receives the event by value — both must
        // still see the identical stream.
        let a = RingBufferObserver::shared(8);
        let b = RingBufferObserver::shared(8);
        let fan = FanoutObserver::new(vec![
            a.clone() as Arc<dyn Observer>,
            b.clone() as Arc<dyn Observer>,
        ]);
        for i in 0..5 {
            fan.record(tick(i));
        }
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 5);
        // A disabled final sink must not swallow the event meant for the
        // enabled one before it.
        let c = RingBufferObserver::shared(8);
        let fan = FanoutObserver::new(vec![c.clone() as Arc<dyn Observer>, Arc::new(NoopObserver)]);
        for i in 0..3 {
            fan.record(tick(i));
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn pooled_id_allocator_matches_fresh_handle_numbering() {
        let ring = RingBufferObserver::shared(64);
        let ids = Arc::new(AtomicU64::new(77));
        let mut handle = ObsHandle::with_id_allocator(ring.clone(), Arc::clone(&ids));
        let span = handle.begin_span(0, || SpanKind::Scope { name: "s" });
        handle.end_span(span, 1, SpanStatus::Ok, CostSnapshot::ZERO);
        // The recycled counter was reset, so the first span id is 1 —
        // exactly what ObsHandle::new would have produced.
        assert_eq!(ring.events()[0].span, 1);
        assert_eq!(ids.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let mut handle = ObsHandle::new(Arc::new(NoopObserver));
        assert!(!handle.enabled());
        let token = handle.begin_span(0, || panic!("kind must not be evaluated"));
        handle.emit(0, || panic!("point must not be evaluated"));
        handle.end_span(token, 0, SpanStatus::Ok, CostSnapshot::ZERO);
        assert_eq!(handle.current_span(), ROOT_SPAN);
    }
}
