# Developer entry points. `make verify` is the gate CI and contributors
# run before pushing: formatting, lints as errors, and the full test
# suite.

CARGO ?= cargo

.PHONY: verify fmt clippy test build bench bench-campaign bench-adjudicate bench-trace bench-services bench-smoke chaos-smoke monitor-smoke services-smoke services-shard-smoke examples

verify: fmt clippy test

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace -- -D warnings

test:
	$(CARGO) test -q --workspace

build:
	$(CARGO) build --release

bench:
	$(CARGO) bench --workspace

# Serial-vs-parallel campaign throughput plus adjudication kernel
# throughput, both mirrored into BENCH_campaign.json — the recorder
# merges by label, so the two binaries share one file. (Absolute path:
# cargo runs each bench with the package dir as cwd.)
bench-campaign:
	CRITERION_JSON_OUT=$(CURDIR)/BENCH_campaign.json $(CARGO) bench -p redundancy-bench --bench campaign_throughput
	CRITERION_JSON_OUT=$(CURDIR)/BENCH_campaign.json $(CARGO) bench -p redundancy-bench --bench adjudicate_throughput
	CRITERION_JSON_OUT=$(CURDIR)/BENCH_campaign.json $(CARGO) bench -p redundancy-bench --bench trace_throughput

# Event-loop runtime throughput and tail latency (E20 cells): wall-clock
# cost of driving a workload through the loop plus the virtual-time
# req/sec and p99/p999 families, mirrored into BENCH_campaign.json.
bench-services:
	CRITERION_JSON_OUT=$(CURDIR)/BENCH_campaign.json $(CARGO) bench -p redundancy-bench --bench services_throughput

# Batch-adjudication bench with tiny sampling budgets: a CI smoke test
# that proves the kernel benches build, run, and keep their
# verdict-equivalence guards green — not a measurement.
bench-adjudicate:
	CRITERION_SAMPLES=2 CRITERION_MEASURE_MS=20 CRITERION_WARMUP_MS=5 $(CARGO) bench -p redundancy-bench --bench adjudicate_throughput

# Traced-vs-untraced overhead bench with tiny sampling budgets: a CI
# smoke test that proves the trace bench builds, runs, and keeps its
# traced-equals-untraced determinism guard green — not a measurement.
# For real numbers run it via bench-campaign's JSON recorder:
#   CRITERION_JSON_OUT=$(CURDIR)/BENCH_campaign.json cargo bench -p redundancy-bench --bench trace_throughput
bench-trace:
	CRITERION_SAMPLES=2 CRITERION_MEASURE_MS=20 CRITERION_WARMUP_MS=5 $(CARGO) bench -p redundancy-bench --bench trace_throughput

# Compile and run every bench with tiny sampling budgets. This is a CI
# smoke test — it proves the benches build, run, and keep their
# determinism guards green — not a measurement.
bench-smoke:
	CRITERION_SAMPLES=2 CRITERION_MEASURE_MS=20 CRITERION_WARMUP_MS=5 $(CARGO) bench --workspace

# Kill-and-resume determinism gate: runs E19 in its reduced --smoke
# configuration, which injects scripted worker kills / mid-trial
# cancellations into checkpointed campaigns and asserts the resumed
# summaries (and the traced event stream) are byte-identical to an
# uninterrupted run. Fails loudly if crash-only resumption ever drifts.
chaos-smoke:
	$(CARGO) run -q -p redundancy-bench --bin exp_resume -- --smoke

# Flight-recorder gate: runs a campaign under the background monitor and
# asserts the contract — results bit-identical to an unmonitored run,
# Prometheus export passes the exposition-format validator, every JSONL
# snapshot is well-formed.
monitor-smoke:
	$(CARGO) run -q -p redundancy-bench --bin exp_monitor

# Event-loop runtime gate: runs E20 in its reduced --smoke configuration
# under the flight recorder and asserts the seeded per-request ledger is
# bit-identical across two runs. Fails loudly if the deterministic event
# loop ever drifts.
services-smoke:
	$(CARGO) run -q -p redundancy-bench --bin exp_services -- --smoke --monitor

# Sharded-runtime gate: runs E21 in its --smoke configuration, which
# asserts (1) breaker-off ledger digests are bit-identical at shards
# {1,2,8}, (2) breaker-on runs are jobs-invariant, (3) the circuit
# breaker measurably cuts failed attempts with the hedged p99 no worse
# than the single-loop baseline, and (4) service telemetry totals do
# not depend on pool scheduling.
services-shard-smoke:
	$(CARGO) run -q -p redundancy-bench --bin exp_shard -- --smoke --monitor

# Build and run every example end to end. A CI smoke test: the examples
# are the documented entry points, so they must keep compiling *and*
# finishing cleanly.
examples:
	$(CARGO) build --examples
	$(CARGO) run -q --example quickstart
	$(CARGO) run -q --example resilient_booking
	$(CARGO) run -q --example robust_store
	$(CARGO) run -q --example self_healing_server
	$(CARGO) run -q --example automatic_repair
