# Developer entry points. `make verify` is the gate CI and contributors
# run before pushing: formatting, lints as errors, and the full test
# suite.

CARGO ?= cargo

.PHONY: verify fmt clippy test build bench

verify: fmt clippy test

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace -- -D warnings

test:
	$(CARGO) test -q

build:
	$(CARGO) build --release

bench:
	$(CARGO) bench --workspace
